// Figure 14: snapshot size over time while the maintenance protocol
// updates the network snapshot every 100 time units (weather data, 5,000
// values per node, 5% snooping). One line per transmission range.
//
// Paper shape: the size fluctuates mildly around a range-dependent mean —
// larger for the short range (paper: ~70 at range 0.2, ~25 at 0.7; a
// shorter range means fewer reachable candidates per node).
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "longrun_common.h"

SNAPQ_BENCHMARK(fig14_snapshot_overtime,
                "Figure 14: snapshot size over time (weather data)") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 14: snapshot size over time (weather data)",
      "N=100, T=0.1, sse, update every 100 units, snoop=5%; 5,000 time "
      "units");

  const Time horizon = ctx.Scaled(bench::kLongHorizon);
  const int reps = static_cast<int>(ctx.Scaled(bench::kLongRepetitions));

  // round start -> range -> stats over repetitions. The long runs execute
  // in parallel per (range, seed); the per-round samples fold in the old
  // serial order (range-major, then seed) on this thread.
  const std::vector<double> ranges = {0.2, 0.7};
  const auto per_run =
      exec::ParallelMap<std::vector<MaintenanceRoundStats>>(
          ranges.size() * static_cast<size_t>(reps), ctx.jobs,
          [&](size_t i) {
            return bench::RunLongMaintenance(
                ranges[i / static_cast<size_t>(reps)],
                bench::kBaseSeed + (i % static_cast<size_t>(reps)),
                horizon);
          });
  std::map<Time, std::map<double, RunningStats>> by_round;
  std::map<double, RunningStats> overall;
  for (size_t i = 0; i < per_run.size(); ++i) {
    const double range = ranges[i / static_cast<size_t>(reps)];
    for (const MaintenanceRoundStats& s : per_run[i]) {
      by_round[s.round_start][range].Add(
          static_cast<double>(s.snapshot_size));
      overall[range].Add(static_cast<double>(s.snapshot_size));
    }
  }

  TablePrinter table({"time", "n1 (range=0.2)", "n1 (range=0.7)"});
  int printed = 0;
  for (const auto& [t, per_range] : by_round) {
    if (printed++ % 4 != 0) continue;  // thin the series for readability
    std::vector<std::string> row = {std::to_string(t)};
    for (double range : {0.2, 0.7}) {
      const auto it = per_range.find(range);
      row.push_back(it == per_range.end()
                        ? std::string("-")
                        : TablePrinter::Num(it->second.mean(), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\naverage snapshot size: range 0.2 -> %.1f, range 0.7 -> %.1f\n",
              overall[0.2].mean(), overall[0.7].mean());
}
