#include "obs/timeline.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/json.h"

namespace snapq::obs {
namespace {

void AppendOneSeries(const std::string& name, const TimeSeries& series,
                     std::string* out) {
  *out += '"';
  *out += JsonEscape(name);
  *out += "\": {\"last\": " + JsonNumber(series.last());
  *out += ", \"ewma\": " + JsonNumber(series.ewma());
  *out += ", \"min\": " + JsonNumber(series.min_seen());
  *out += ", \"max\": " + JsonNumber(series.max_seen());
  *out += ", \"mean\": " + JsonNumber(series.mean());
  *out += ", \"slope\": " + JsonNumber(series.Slope());
  *out += ", \"samples\": " + std::to_string(series.num_samples());
  *out += ", \"bins\": [";
  for (size_t i = 0; i < series.num_bins(); ++i) {
    const SeriesBin& bin = series.bin(i);
    if (i > 0) *out += ", ";
    *out += "{\"t0\": " + std::to_string(bin.t_first);
    *out += ", \"t1\": " + std::to_string(bin.t_last);
    *out += ", \"min\": " + JsonNumber(bin.min);
    *out += ", \"max\": " + JsonNumber(bin.max);
    *out += ", \"mean\": " + JsonNumber(bin.mean());
    *out += ", \"count\": " + std::to_string(bin.count) + "}";
  }
  *out += "]}";
}

}  // namespace

void AppendSeriesJson(const TelemetryRecorder& recorder, std::string* out) {
  *out += '{';
  bool first = true;
  recorder.ForEachSeries([&](const std::string& name,
                             const TimeSeries& series) {
    if (!first) *out += ", ";
    first = false;
    AppendOneSeries(name, series, out);
  });
  *out += '}';
}

void AppendSloJson(const SloWatchdog& watchdog, std::string* out) {
  *out += "{\"rules\": [";
  bool first = true;
  for (const SloRule& rule : watchdog.rules()) {
    if (!first) *out += ", ";
    first = false;
    *out += '"';
    *out += JsonEscape(rule.ToString());
    *out += '"';
  }
  *out += "], \"breaches\": [";
  first = true;
  for (const SloBreach& breach : watchdog.breaches()) {
    if (!first) *out += ", ";
    first = false;
    *out += "{\"rule\": \"" + JsonEscape(breach.rule.ToString()) + "\"";
    *out += ", \"metric\": \"" + JsonEscape(breach.rule.metric) + "\"";
    *out += ", \"since\": " + std::to_string(breach.violated_since);
    *out += ", \"confirmed\": " + std::to_string(breach.confirmed_at);
    *out += ", \"observed\": " + JsonNumber(breach.observed);
    *out += ", \"threshold\": " + JsonNumber(breach.rule.threshold) + "}";
  }
  *out += "], \"verdict\": \"";
  *out += watchdog.healthy() ? "pass" : "breach";
  *out += "\"}";
}

std::string TimelineToJson(const TelemetryRecorder& recorder,
                           const SloWatchdog* watchdog,
                           const TimelineMeta& meta) {
  std::string out = "{\"schema_version\": ";
  out += std::to_string(kTimelineSchemaVersion);
  out += ", \"kind\": \"snapq-timeline\"";
  out += ", \"benchmark\": \"" + JsonEscape(meta.benchmark) + "\"";
  out += ", \"git_sha\": \"" + JsonEscape(meta.git_sha) + "\"";
  out += meta.quick ? ", \"quick\": true" : ", \"quick\": false";
  out += ", \"horizon\": " + std::to_string(meta.horizon);
  out += ", \"sample_interval\": " +
         std::to_string(recorder.config().sample_interval);
  out += ", \"samples\": " + std::to_string(recorder.num_samples());
  out += ", \"series\": ";
  AppendSeriesJson(recorder, &out);
  out += ", \"slo\": ";
  if (watchdog != nullptr) {
    AppendSloJson(*watchdog, &out);
  } else {
    out += "{\"rules\": [], \"breaches\": [], \"verdict\": \"pass\"}";
  }
  out += "}";
  return out;
}

bool WriteTextFileAtomic(const std::string& path,
                         const std::string& contents) {
  namespace fs = std::filesystem;
  const std::string staged =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(staged);
    if (!out) return false;
    out << contents;
    if (!out.good()) {
      std::error_code ec;
      fs::remove(staged, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(staged, path, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(staged, cleanup);
    return false;
  }
  return true;
}

}  // namespace snapq::obs
