// Perfetto/Chrome trace-event export tests: the JSON is syntactically
// valid (full-grammar check), every event carries the keys its phase
// requires, flow arrows pair up, and a real 20-node protocol run exports
// cleanly end to end.
#include "obs/perfetto_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "obs/json.h"
#include "obs/tracer.h"

namespace snapq::obs {
namespace {

/// Splits the export into one string per trace event (the exporter writes
/// one event per line with ",\n" separators).
std::vector<std::string> EventLines(const std::string& json) {
  std::vector<std::string> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') continue;
    if (line.rfind("{\"traceEvents\"", 0) == 0) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    events.push_back(line);
  }
  return events;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(PerfettoExportTest, EmptyTracerProducesValidEnvelope) {
  Tracer tracer;
  const std::string json = ExportChromeTrace(tracer);
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(PerfettoExportTest, SpansBecomeDurationEventsWithFlows) {
  TracerConfig config;
  config.sampling = 1.0;
  Tracer tracer(config);
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 10);
  const TraceContext msg =
      tracer.BeginMessageSpan(root, MessageType::kInvitation, 1, 10);
  tracer.RecordDelivery(msg, 2, 10, RadioEventKind::kDeliver);
  tracer.RecordDelivery(msg, 3, 11, RadioEventKind::kSnoop);
  tracer.RecordDelivery(msg, 4, 11, RadioEventKind::kLoss);

  const std::string json = ExportChromeTrace(tracer);
  ASSERT_TRUE(ValidateJson(json));
  // Metadata: the process plus one named track per participant (protocol
  // track for the node-less root, nodes 1-4).
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"snapq\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"protocol\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 4\""), std::string::npos);
  // Two duration events (root + message), one flow pair per successful
  // delivery/snoop, one instant for the loss.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"s\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"f\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("loss Invitation"), std::string::npos);
  // Span/parent ids are exposed as args for trace-tree reconstruction.
  EXPECT_NE(json.find("\"span\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
}

TEST(PerfettoExportTest, EveryEventCarriesItsPhaseRequiredKeys) {
  TracerConfig config;
  config.sampling = 1.0;
  Tracer tracer(config);
  const TraceContext root = tracer.StartTrace(TraceRootKind::kQuery, 0, 3, 1);
  const TraceContext msg =
      tracer.BeginMessageSpan(root, MessageType::kQueryRequest, 0, 3);
  tracer.RecordDelivery(msg, 1, 3, RadioEventKind::kDeliver);
  tracer.RecordInstant(root, "query.respond", 1, 4);

  const std::string json = ExportChromeTrace(tracer);
  ASSERT_TRUE(ValidateJson(json));
  const std::vector<std::string> events = EventLines(json);
  ASSERT_FALSE(events.empty());
  for (const std::string& event : events) {
    EXPECT_TRUE(ValidateJson(event)) << event;
    ASSERT_NE(event.find("\"ph\":\""), std::string::npos) << event;
    const char ph = event[event.find("\"ph\":\"") + 6];
    EXPECT_NE(event.find("\"pid\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"name\":"), std::string::npos) << event;
    if (ph != 'M') {
      EXPECT_NE(event.find("\"ts\":"), std::string::npos) << event;
      EXPECT_NE(event.find("\"tid\":"), std::string::npos) << event;
    }
    if (ph == 'X') {
      EXPECT_NE(event.find("\"dur\":"), std::string::npos) << event;
    }
    if (ph == 's' || ph == 'f') {
      EXPECT_NE(event.find("\"id\":"), std::string::npos) << event;
    }
  }
}

TEST(PerfettoExportTest, TwentyNodeRunExportsValidChromeTraceJson) {
  SensitivityConfig config;
  config.num_nodes = 20;
  config.num_classes = 4;
  config.trace_sampling = 1.0;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  const Tracer* tracer = outcome.network->tracer();
  ASSERT_NE(tracer, nullptr);
  ASSERT_FALSE(tracer->spans().empty());

  const std::string json = ExportChromeTrace(*tracer);
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_GT(CountOccurrences(json, "\"ph\":\"X\""), 10u);
  // With P_loss = 0 every send delivers: flow starts and ends must pair.
  const size_t starts = CountOccurrences(json, "\"ph\":\"s\"");
  EXPECT_EQ(starts, CountOccurrences(json, "\"ph\":\"f\""));
  EXPECT_GT(starts, 0u);
  for (const std::string& event : EventLines(json)) {
    EXPECT_TRUE(ValidateJson(event)) << event;
  }
}

TEST(PerfettoExportTest, WriteChromeTraceFileRoundTrips) {
  TracerConfig config;
  config.sampling = 1.0;
  Tracer tracer(config);
  tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const std::string path =
      testing::TempDir() + "/perfetto_export_test.trace.json";
  ASSERT_TRUE(WriteChromeTraceFile(tracer, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ExportChromeTrace(tracer));
  EXPECT_TRUE(ValidateJson(buffer.str()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snapq::obs
