// Pins the BENCH.json contract: the golden-schema test freezes field
// names, nesting and number formatting (tools/bench_compare.py and the
// committed bench/baseline/BENCH.json parse this exact shape), plus the
// registry and RunContext mechanics the harness depends on.
#include "bench_report.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_registry.h"
#include "obs/json.h"

namespace snapq::bench {
namespace {

TEST(StatSummaryTest, EmptySamplesGiveZeros) {
  const StatSummary s = StatSummary::FromSamples({});
  EXPECT_EQ(s.reps, 0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatSummaryTest, OddAndEvenMedians) {
  const StatSummary odd = StatSummary::FromSamples({3.0, 1.0, 2.0});
  EXPECT_EQ(odd.median, 2.0);
  EXPECT_EQ(odd.min, 1.0);
  EXPECT_EQ(odd.max, 3.0);
  EXPECT_EQ(odd.reps, 3);
  EXPECT_DOUBLE_EQ(odd.mean, 2.0);

  const StatSummary even = StatSummary::FromSamples({4.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(even.median, 2.5);
  EXPECT_EQ(even.reps, 4);
}

TEST(StatSummaryTest, MedianShrugsOffOneOutlier) {
  // The reason the harness reports medians: one descheduled repetition
  // must not move the headline number.
  const StatSummary s = StatSummary::FromSamples({10.0, 11.0, 500.0});
  EXPECT_EQ(s.median, 11.0);
  EXPECT_EQ(s.max, 500.0);
}

TEST(BenchReportTest, GoldenSchema) {
  // FROZEN: tools/bench_compare.py and downstream BENCH.json trajectory
  // tooling parse exactly this document. Renaming, retyping or reordering
  // a field requires bumping kBenchSchemaVersion and updating the
  // comparator in the same change.
  BenchReport report;
  report.git_sha = "abc123";
  report.timestamp = "2026-01-02T03:04:05Z";
  report.quick = true;
  report.harness_repetitions = 1;
  report.driver_repetitions = 2;

  BenchmarkResult b;
  b.name = "fig_example";
  b.wall_ms = {12.5, 13.0, 12.0, 14.0, 3};
  b.cpu_ms = {10.0, 10.25, 10.0, 11.0, 3};
  b.counters.emplace_back("messages_sent", 42);
  b.throughput.emplace_back("messages_sent_per_sec", 3360.0);
  b.latency_us.push_back(PhaseLatency{"election", 4, 100.0, 200.5, 250.0,
                                      300.0});
  b.peak_rss_kb = 2048;
  report.benchmarks.push_back(b);

  EXPECT_EQ(
      report.ToJson(),
      "{\"schema_version\":1,"
      "\"git_sha\":\"abc123\","
      "\"timestamp\":\"2026-01-02T03:04:05Z\","
      "\"quick\":true,"
      "\"harness_repetitions\":1,"
      "\"driver_repetitions\":2,"
      "\"benchmarks\":[{"
      "\"name\":\"fig_example\","
      "\"wall_ms\":{\"median\":12.5,\"mean\":13,\"min\":12,\"max\":14,"
      "\"reps\":3},"
      "\"cpu_ms\":{\"median\":10,\"mean\":10.25,\"min\":10,\"max\":11,"
      "\"reps\":3},"
      "\"counters\":{\"messages_sent\":42},"
      "\"throughput\":{\"messages_sent_per_sec\":3360},"
      "\"latency_us\":{\"election\":{\"count\":4,\"p50\":100,\"p95\":200.5,"
      "\"p99\":250,\"max\":300}},"
      "\"peak_rss_kb\":2048}]}");
}

TEST(BenchReportTest, EmptyReportIsValidJson) {
  BenchReport report;
  report.git_sha = "x";
  report.timestamp = "t";
  EXPECT_TRUE(obs::ValidateJson(report.ToJson()));
}

TEST(BenchReportTest, GoldenDocumentIsValidJson) {
  BenchReport report;
  report.git_sha = "quote\"backslash\\";
  report.timestamp = "2026-01-02T03:04:05Z";
  BenchmarkResult b;
  b.name = "x";
  b.counters.emplace_back("messages_sent", 1);
  b.latency_us.push_back(PhaseLatency{"election", 0, 0, 0, 0, 0});
  report.benchmarks.push_back(b);
  EXPECT_TRUE(obs::ValidateJson(report.ToJson()));
}

TEST(BenchReportTest, GitShaPrefersEnvOverride) {
  setenv("SNAPQ_GIT_SHA", "f00dfaced00d", 1);
  EXPECT_EQ(GitSha(), "f00dfaced00d");
  unsetenv("SNAPQ_GIT_SHA");
  EXPECT_FALSE(GitSha().empty());  // git or "unknown", never empty
}

TEST(BenchReportTest, IsoTimestampShape) {
  const std::string ts = IsoTimestamp();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(BenchReportTest, PeakRssIsPositive) { EXPECT_GT(PeakRssKb(), 0); }

TEST(RunContextTest, ScaledDividesByTenOnlyInQuickMode) {
  RunContext full;
  EXPECT_EQ(full.Scaled(9000), 9000);
  EXPECT_EQ(full.Scaled(3), 3);
  RunContext quick;
  quick.quick = true;
  EXPECT_EQ(quick.Scaled(9000), 900);
  EXPECT_EQ(quick.Scaled(200), 20);
  EXPECT_EQ(quick.Scaled(3), 1);  // never scales to zero
  EXPECT_EQ(quick.Scaled(1), 1);
}

TEST(RegistryTest, AddKeepsNamesSortedAndFindable) {
  // This test binary links no drivers, so the registry starts empty and
  // we own its contents.
  auto& registry = Registry::Instance();
  const size_t before = registry.benchmarks().size();
  registry.Add("zz_test_second", "second", nullptr);
  registry.Add("aa_test_first", "first", nullptr);
  ASSERT_EQ(registry.benchmarks().size(), before + 2);
  const auto& all = registry.benchmarks();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(std::string(all[i - 1].name), std::string(all[i].name));
  }
  EXPECT_NE(registry.Find("aa_test_first"), nullptr);
  EXPECT_STREQ(registry.Find("aa_test_first")->description, "first");
  EXPECT_EQ(registry.Find("no_such_benchmark"), nullptr);
}

}  // namespace
}  // namespace snapq::bench
