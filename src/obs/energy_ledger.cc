#include "obs/energy_ledger.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "obs/json.h"

namespace snapq::obs {

const char* EnergyDirectionName(EnergyDirection dir) {
  switch (dir) {
    case EnergyDirection::kTx:
      return "tx";
    case EnergyDirection::kRx:
      return "rx";
    case EnergyDirection::kSnoop:
      return "snoop";
  }
  return "?";
}

const char* EnergyCauseName(EnergyCause cause) {
  switch (cause) {
    case EnergyCause::kElection:
      return "election";
    case EnergyCause::kMaintenance:
      return "maintenance";
    case EnergyCause::kData:
      return "data";
    case EnergyCause::kQuery:
      return "query";
    case EnergyCause::kCache:
      return "cache";
    case EnergyCause::kDirect:
      return "direct";
    case EnergyCause::kKilled:
      return "killed";
  }
  return "?";
}

EnergyCause EnergyCauseOf(MessageType type) {
  switch (type) {
    case MessageType::kInvitation:
    case MessageType::kCandList:
    case MessageType::kAccept:
    case MessageType::kRecall:
    case MessageType::kStayActive:
    case MessageType::kRepAck:
      return EnergyCause::kElection;
    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatReply:
    case MessageType::kResign:
      return EnergyCause::kMaintenance;
    case MessageType::kData:
      return EnergyCause::kData;
    case MessageType::kQueryRequest:
    case MessageType::kQueryReply:
      return EnergyCause::kQuery;
    case MessageType::kMessageTypeCount:
      break;
  }
  return EnergyCause::kData;
}

const char* EnergyRootSlotName(size_t slot) {
  // Slots 0..4 mirror obs::TraceRootKind; the trailing slot catches drains
  // with no sampled causal context.
  switch (slot) {
    case 0:
      return "election";
    case 1:
      return "reelection";
    case 2:
      return "heartbeat_round";
    case 3:
      return "query";
    case 4:
      return "violation";
    case kEnergyUntracedSlot:
      return "untraced";
    default:
      return "?";
  }
}

// ---------------------------------------------------------------------------
// EnergyLedgerSnapshot

double EnergyLedgerSnapshot::NodeCauseJoules(NodeId node,
                                             EnergyCause cause) const {
  const double* base = cells.data() + node * kEnergyCellsPerNode;
  switch (cause) {
    case EnergyCause::kCache:
      return base[EnergyLedger::CacheCell()];
    case EnergyCause::kDirect:
      return base[EnergyLedger::DirectCell()];
    case EnergyCause::kKilled:
      return base[EnergyLedger::KilledCell()];
    default:
      break;
  }
  double total = 0.0;
  for (size_t d = 0; d < kNumEnergyDirections; ++d) {
    for (size_t m = 0; m < kNumMessageTypes; ++m) {
      if (EnergyCauseOf(static_cast<MessageType>(m)) != cause) continue;
      total += base[d * kNumMessageTypes + m];
    }
  }
  return total;
}

double EnergyLedgerSnapshot::CauseJoules(EnergyCause cause) const {
  double total = 0.0;
  for (NodeId i = 0; i < num_nodes; ++i) total += NodeCauseJoules(i, cause);
  return total;
}

double EnergyLedgerSnapshot::DirectionJoules(EnergyDirection dir) const {
  double total = 0.0;
  for (NodeId i = 0; i < num_nodes; ++i) {
    const double* base = cells.data() + i * kEnergyCellsPerNode;
    for (size_t m = 0; m < kNumMessageTypes; ++m) {
      total += base[static_cast<size_t>(dir) * kNumMessageTypes + m];
    }
  }
  return total;
}

double EnergyLedgerSnapshot::TotalDrained() const {
  double total = 0.0;
  for (double d : drained) total += d;
  return total;
}

uint64_t EnergyLedgerSnapshot::TotalDeaths() const {
  uint64_t total = 0;
  for (uint64_t d : deaths) total += d;
  return total;
}

bool EnergyLedgerSnapshot::MergeFrom(const EnergyLedgerSnapshot& other) {
  if (num_nodes != other.num_nodes || cells.size() != other.cells.size() ||
      root_kind.size() != other.root_kind.size() ||
      initial_battery != other.initial_battery) {
    return false;
  }
  runs += other.runs;
  for (size_t i = 0; i < cells.size(); ++i) cells[i] += other.cells[i];
  for (size_t i = 0; i < drained.size(); ++i) drained[i] += other.drained[i];
  for (size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] += other.remaining[i];
  }
  for (size_t i = 0; i < deaths.size(); ++i) deaths[i] += other.deaths[i];
  for (size_t i = 0; i < root_kind.size(); ++i) {
    root_kind[i] += other.root_kind[i];
  }
  first_death_sum += other.first_death_sum;
  first_death_runs += other.first_death_runs;
  knee_sum += other.knee_sum;
  knee_runs += other.knee_runs;
  return true;
}

// ---------------------------------------------------------------------------
// EnergyMapToJson

namespace {

void AppendCauseObject(std::ostringstream& out,
                       const EnergyLedgerSnapshot& snap, NodeId node,
                       double inv_runs) {
  out << "{";
  for (size_t c = 0; c < kNumEnergyCauses; ++c) {
    if (c != 0) out << ", ";
    const auto cause = static_cast<EnergyCause>(c);
    const double joules = node == kInvalidNode
                              ? snap.CauseJoules(cause)
                              : snap.NodeCauseJoules(node, cause);
    out << "\"" << EnergyCauseName(cause) << "\": "
        << JsonNumber(joules * inv_runs);
  }
  out << "}";
}

}  // namespace

std::string EnergyMapToJson(const EnergyLedgerSnapshot& snap,
                            const std::vector<Point>& positions,
                            const EnergyMapMeta& meta) {
  SNAPQ_CHECK_EQ(positions.size(), snap.num_nodes);
  SNAPQ_CHECK_GT(snap.runs, 0u);
  // Joule quantities are per-run means (so --jobs folding and repetition
  // counts don't change the scale); death counts are raw totals across
  // runs, with "runs" present so consumers can derive rates. An unlimited
  // battery reports initial_battery/remaining as -1 (never infinity, which
  // would serialize as JSON null).
  const double inv_runs = 1.0 / static_cast<double>(snap.runs);
  const bool unlimited = !std::isfinite(snap.initial_battery);
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kEnergyMapSchemaVersion << ",\n";
  out << "  \"kind\": \"snapq-energymap\",\n";
  out << "  \"benchmark\": \"" << JsonEscape(meta.benchmark) << "\",\n";
  out << "  \"git_sha\": \"" << JsonEscape(meta.git_sha) << "\",\n";
  out << "  \"quick\": " << (meta.quick ? "true" : "false") << ",\n";
  out << "  \"t\": " << meta.t << ",\n";
  out << "  \"runs\": " << snap.runs << ",\n";
  out << "  \"num_nodes\": " << snap.num_nodes << ",\n";
  out << "  \"unlimited\": " << (unlimited ? "true" : "false") << ",\n";
  out << "  \"initial_battery\": "
      << JsonNumber(unlimited ? -1.0 : snap.initial_battery) << ",\n";

  out << "  \"totals\": {\n";
  out << "    \"drained\": " << JsonNumber(snap.TotalDrained() * inv_runs)
      << ",\n";
  double remaining_total = 0.0;
  for (double r : snap.remaining) remaining_total += r;
  out << "    \"remaining\": "
      << JsonNumber(unlimited ? -1.0 : remaining_total * inv_runs) << ",\n";
  out << "    \"deaths\": " << snap.TotalDeaths() << ",\n";
  out << "    \"by_cause\": ";
  AppendCauseObject(out, snap, kInvalidNode, inv_runs);
  out << ",\n";
  out << "    \"by_direction\": {";
  for (size_t d = 0; d < kNumEnergyDirections; ++d) {
    if (d != 0) out << ", ";
    const auto dir = static_cast<EnergyDirection>(d);
    out << "\"" << EnergyDirectionName(dir) << "\": "
        << JsonNumber(snap.DirectionJoules(dir) * inv_runs);
  }
  out << "},\n";
  out << "    \"by_root_kind\": {";
  for (size_t s = 0; s < snap.root_kind.size(); ++s) {
    if (s != 0) out << ", ";
    out << "\"" << EnergyRootSlotName(s) << "\": "
        << JsonNumber(snap.root_kind[s] * inv_runs);
  }
  out << "}\n  },\n";

  const double first_death =
      snap.first_death_runs == 0
          ? -1.0
          : snap.first_death_sum / static_cast<double>(snap.first_death_runs);
  const double knee = snap.knee_runs == 0
                          ? -1.0
                          : snap.knee_sum /
                                static_cast<double>(snap.knee_runs);
  out << "  \"forecast\": {\"first_death_tick\": " << JsonNumber(first_death)
      << ", \"coverage_knee_tick\": " << JsonNumber(knee) << "},\n";

  out << "  \"extras\": {";
  for (size_t i = 0; i < meta.extras.size(); ++i) {
    if (i != 0) out << ", ";
    out << "\"" << JsonEscape(meta.extras[i].first)
        << "\": " << JsonNumber(meta.extras[i].second);
  }
  out << "},\n";

  out << "  \"nodes\": [\n";
  for (NodeId i = 0; i < snap.num_nodes; ++i) {
    out << "    {\"id\": " << i << ", \"x\": " << JsonNumber(positions[i].x)
        << ", \"y\": " << JsonNumber(positions[i].y) << ", \"remaining\": "
        << JsonNumber(unlimited ? -1.0 : snap.remaining[i] * inv_runs)
        << ", \"drained\": " << JsonNumber(snap.drained[i] * inv_runs)
        << ", \"deaths\": " << snap.deaths[i] << ", \"by_cause\": ";
    AppendCauseObject(out, snap, i, inv_runs);
    out << "}" << (i + 1 < snap.num_nodes ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// EnergyLedger

namespace {

// GaugePack slots: the unconditional gauges published by UpdateGauges.
constexpr size_t kDrainedSlot = 0;
constexpr size_t kBurnRateSlot = 1;
constexpr size_t kFirstCauseSlot = 2;  // + static_cast<size_t>(cause)

std::vector<std::string> LedgerGaugeNames() {
  std::vector<std::string> names = {"energy.drained", "energy.burn_rate"};
  for (size_t c = 0; c < kNumEnergyCauses; ++c) {
    names.push_back(std::string("energy.cause.") +
                    EnergyCauseName(static_cast<EnergyCause>(c)));
  }
  return names;
}

}  // namespace

EnergyLedger::EnergyLedger(const EnergyModel& model, size_t num_nodes,
                           MetricRegistry* registry)
    : model_(model),
      num_nodes_(num_nodes),
      gauges_(registry, LedgerGaugeNames()),
      cells_(num_nodes * kEnergyCellsPerNode, 0.0),
      drained_(num_nodes, 0.0),
      remaining_(num_nodes, model.initial_battery),
      death_tick_(num_nodes, -1),
      median_scratch_(num_nodes, 0.0) {
  // An unlimited model would publish infinite remaining-charge gauges,
  // which serialize as JSON null and pollute timeline/blackbox sidecars —
  // skip them entirely (ISSUE 8 satellite 2).
  if (!model_.unlimited()) {
    remaining_total_gauge_ = registry->GetGauge("energy.remaining_total");
    remaining_min_gauge_ = registry->GetGauge("energy.remaining_min");
    first_death_gauge_ = registry->GetGauge("energy.first_death_tick");
    knee_gauge_ = registry->GetGauge("energy.coverage_knee_tick");
    remaining_total_gauge_->Set(model_.initial_battery *
                                static_cast<double>(num_nodes_));
    remaining_min_gauge_->Set(num_nodes_ == 0 ? 0.0
                                              : model_.initial_battery);
    first_death_gauge_->Set(-1.0);
    knee_gauge_->Set(-1.0);
  }
}

void EnergyLedger::Record(NodeId node, size_t cell, EnergyCause cause,
                          double applied, int root_slot) {
  cells_[node * kEnergyCellsPerNode + cell] += applied;
  drained_[node] += applied;
  // Mirrors the battery's own subtraction sequence (the simulator passes
  // the *applied* drain from Battery::Consume), so remaining_[node] stays
  // bitwise equal to the battery under any cost model.
  remaining_[node] -= applied;
  cause_totals_[static_cast<size_t>(cause)] += applied;
  total_drained_ += applied;
  const size_t slot =
      (root_slot < 0 ||
       root_slot >= static_cast<int>(kNumEnergyRootSlots) - 1)
          ? kEnergyUntracedSlot
          : static_cast<size_t>(root_slot);
  root_kind_[slot] += applied;
}

void EnergyLedger::RecordMessage(NodeId node, MessageType type,
                                 EnergyDirection dir, double applied,
                                 int root_slot) {
  Record(node, CellIndex(dir, type), EnergyCauseOf(type), applied, root_slot);
}

void EnergyLedger::RecordCacheOp(NodeId node, double applied, int root_slot) {
  Record(node, CacheCell(), EnergyCause::kCache, applied, root_slot);
}

void EnergyLedger::RecordDirect(NodeId node, double applied, int root_slot) {
  Record(node, DirectCell(), EnergyCause::kDirect, applied, root_slot);
}

void EnergyLedger::RecordKillDiscard(NodeId node, double discarded) {
  // An unlimited battery has nothing to discard (and inf - inf is NaN).
  if (!std::isfinite(discarded)) return;
  Record(node, KilledCell(), EnergyCause::kKilled, discarded, -1);
}

void EnergyLedger::RecordDeath(NodeId node, Time t) {
  if (death_tick_[node] >= 0) return;
  death_tick_[node] = t;
  ++deaths_;
  if (first_death_time_ < 0 || t < first_death_time_) first_death_time_ = t;
}

namespace {

/// Tick a linearly-extrapolated series crosses zero; -1 when the trend is
/// flat/positive or the series is too short to trend.
double ProjectZeroCrossing(const TimeSeries& series, Time now, double value) {
  if (series.num_bins() < 2) return -1.0;
  const double slope = series.Slope();
  if (!(slope < 0.0)) return -1.0;
  return static_cast<double>(now) + value / (-slope);
}

}  // namespace

void EnergyLedger::UpdateGauges(Time now) {
  gauges_.Set(kDrainedSlot, total_drained_);
  if (last_update_time_ >= 0 && now > last_update_time_) {
    gauges_.Set(kBurnRateSlot, (total_drained_ - last_update_drained_) /
                                   static_cast<double>(now - last_update_time_));
  } else {
    gauges_.Set(kBurnRateSlot, 0.0);
  }
  last_update_time_ = now;
  last_update_drained_ = total_drained_;
  for (size_t c = 0; c < kNumEnergyCauses; ++c) {
    gauges_.Set(kFirstCauseSlot + c, cause_totals_[c]);
  }
  if (remaining_total_gauge_ == nullptr || num_nodes_ == 0) return;

  double total = 0.0;
  double min = remaining_[0];
  for (size_t i = 0; i < num_nodes_; ++i) {
    const double r = remaining_[i];
    total += r;
    if (r < min) min = r;
    median_scratch_[i] = r;
  }
  const size_t mid = num_nodes_ / 2;
  std::nth_element(median_scratch_.begin(),
                   median_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   median_scratch_.end());
  const double median = median_scratch_[mid];
  remaining_total_gauge_->Set(total);
  remaining_min_gauge_->Set(min);
  min_series_.Push(now, min);
  median_series_.Push(now, median);

  first_death_tick_ = first_death_time_ >= 0
                          ? static_cast<double>(first_death_time_)
                          : ProjectZeroCrossing(min_series_, now, min);
  if (median <= 0.0) {
    if (knee_time_ < 0) knee_time_ = now;
    coverage_knee_tick_ = static_cast<double>(knee_time_);
  } else {
    coverage_knee_tick_ = ProjectZeroCrossing(median_series_, now, median);
  }
  first_death_gauge_->Set(first_death_tick_);
  knee_gauge_->Set(coverage_knee_tick_);
}

EnergyLedgerSnapshot EnergyLedger::TakeSnapshot() const {
  EnergyLedgerSnapshot s;
  s.runs = 1;
  s.num_nodes = num_nodes_;
  s.initial_battery = model_.initial_battery;
  s.cells = cells_;
  s.drained = drained_;
  s.remaining = remaining_;
  s.deaths.assign(num_nodes_, 0);
  for (size_t i = 0; i < num_nodes_; ++i) {
    if (death_tick_[i] >= 0) s.deaths[i] = 1;
  }
  s.root_kind.assign(root_kind_, root_kind_ + kNumEnergyRootSlots);
  if (first_death_tick_ >= 0) {
    s.first_death_sum = first_death_tick_;
    s.first_death_runs = 1;
  }
  if (coverage_knee_tick_ >= 0) {
    s.knee_sum = coverage_knee_tick_;
    s.knee_runs = 1;
  }
  return s;
}

std::string EnergyLedger::ToTable() const {
  std::ostringstream out;
  out << "energy ledger: " << num_nodes_ << " nodes, battery ";
  if (unlimited()) {
    out << "unlimited";
  } else {
    out << TablePrinter::Num(model_.initial_battery);
  }
  out << ", drained " << TablePrinter::Num(total_drained_) << " J\n";

  TablePrinter causes({"cause", "joules", "share"});
  for (size_t c = 0; c < kNumEnergyCauses; ++c) {
    const double joules = cause_totals_[c];
    const double share =
        total_drained_ > 0.0 ? 100.0 * joules / total_drained_ : 0.0;
    causes.AddRow({EnergyCauseName(static_cast<EnergyCause>(c)),
                   TablePrinter::Num(joules),
                   TablePrinter::Num(share, 1) + "%"});
  }
  causes.Print(out);

  double dir_joules[kNumEnergyDirections] = {};
  for (size_t i = 0; i < num_nodes_; ++i) {
    const double* base = cells_.data() + i * kEnergyCellsPerNode;
    for (size_t d = 0; d < kNumEnergyDirections; ++d) {
      for (size_t m = 0; m < kNumMessageTypes; ++m) {
        dir_joules[d] += base[d * kNumMessageTypes + m];
      }
    }
  }
  out << "directions:";
  for (size_t d = 0; d < kNumEnergyDirections; ++d) {
    out << " " << EnergyDirectionName(static_cast<EnergyDirection>(d)) << "="
        << TablePrinter::Num(dir_joules[d]);
  }
  out << "\n";

  bool any_traced = false;
  for (size_t s = 0; s + 1 < kNumEnergyRootSlots; ++s) {
    if (root_kind_[s] > 0.0) any_traced = true;
  }
  if (any_traced) {
    out << "trace roots:";
    for (size_t s = 0; s < kNumEnergyRootSlots; ++s) {
      if (root_kind_[s] <= 0.0) continue;
      out << " " << EnergyRootSlotName(s) << "="
          << TablePrinter::Num(root_kind_[s]);
    }
    out << "\n";
  }

  if (!unlimited() && num_nodes_ > 0) {
    double total = 0.0;
    double min = remaining_[0];
    for (size_t i = 0; i < num_nodes_; ++i) {
      total += remaining_[i];
      if (remaining_[i] < min) min = remaining_[i];
    }
    out << "remaining: min=" << TablePrinter::Num(min)
        << " mean=" << TablePrinter::Num(total / static_cast<double>(num_nodes_))
        << " total=" << TablePrinter::Num(total) << "\n";
    out << "deaths: " << deaths_;
    if (first_death_time_ >= 0) out << " (first at t=" << first_death_time_ << ")";
    out << "\n";
    out << "forecast: first-death ";
    if (first_death_tick_ >= 0) {
      out << "~t=" << TablePrinter::Num(first_death_tick_, 0);
    } else {
      out << "n/a";
    }
    out << ", coverage-knee ";
    if (coverage_knee_tick_ >= 0) {
      out << "~t=" << TablePrinter::Num(coverage_knee_tick_, 0);
    } else {
      out << "n/a";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace snapq::obs
