// Minimal JSON helpers for the observability layer: string escaping for
// the writers (registry export, event journal) and a flat-object parser
// for reading journal lines back (tests, the shell's \journal command).
// Deliberately not a general JSON library — the journal and the metric
// exporters only ever produce one-level objects with scalar values.
#ifndef SNAPQ_OBS_JSON_H_
#define SNAPQ_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace snapq::obs {

/// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

/// Formats a double the way our writers emit numbers: shortest form that
/// round-trips integers exactly ("4" not "4.000000").
std::string JsonNumber(double value);

/// One scalar value of a parsed flat JSON object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  int64_t AsInt() const { return static_cast<int64_t>(number); }
};

/// Parses a one-level JSON object ({"key": scalar, ...}) with string,
/// number, bool and null values. Returns nullopt on malformed input or
/// nested containers.
std::optional<std::map<std::string, JsonValue>> ParseFlatJsonObject(
    std::string_view text);

/// Validates that `text` is one complete JSON value under the full grammar
/// (objects, arrays, strings, numbers, booleans, null) with only trailing
/// whitespace after it. A syntax check only — no DOM is built. Used to
/// sanity-check nested documents our flat parser cannot read (the Perfetto
/// export, metric sidecars). Nesting deeper than 64 levels is rejected.
bool ValidateJson(std::string_view text);

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_JSON_H_
