// Accuracy audit: ground-truth error-budget telemetry for snapshot
// answers, swept across message loss x threshold T. Each cell runs the
// standard §6.1 weather pipeline with the accuracy auditor enabled, in
// two phases:
//
//  * discovery — data frozen, right after representative discovery: one
//    USE SNAPSHOT query round (the per-query hook) plus a representation
//    sweep (AuditSnapshotNow). Invariant gate: discovery only elects
//    representations it verified against T, so with ZERO loss no estimate
//    may violate its bound — any lossless discovery violation fails the
//    run (exit code 1). CI's perf-smoke job leans on that as a
//    correctness gate, not a perf signal.
//  * drift — the readings then random-walk away for a post-discovery
//    window while maintenance rounds repair violated models; every tick
//    is sweep-audited. Violations here measure how long stale estimates
//    linger: tighter T violates sooner, higher loss delays the repair
//    traffic, so the violation rate climbs with both.
//
// The table reports the measured |x - x^| error CDF and both phases'
// violation counts per cell; the `.accuracy.json` sidecar carries the
// same numbers for CI and EXPERIMENTS.md.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "obs/accuracy.h"
#include "obs/json.h"
#include "obs/profiler.h"

namespace {

using namespace snapq;

constexpr Time kDriftTicks = 100;       // post-discovery audit window
constexpr Time kMaintInterval = 25;     // repair rounds during the drift
constexpr double kDriftStep = 0.05;     // per-tick random-walk stddev

/// Folded audit results of one (loss, T) cell across all seeds.
struct CellResult {
  double loss = 0.0;
  double threshold = 0.0;
  // Discovery phase (frozen data): the lossless-gate numbers.
  uint64_t discovery_audited = 0;
  uint64_t discovery_violations = 0;
  // Both phases together.
  uint64_t audited = 0;
  uint64_t violations = 0;
  obs::LogHistogram errors;  // |x - x^| across every audited estimate

  double violation_rate() const {
    return audited == 0 ? 0.0 : static_cast<double>(violations) /
                                    static_cast<double>(audited);
  }
};

std::string CellsToJson(const std::vector<CellResult>& cells,
                        const std::string& name, int repetitions, bool quick,
                        double error_budget) {
  using obs::JsonNumber;
  std::string out = "{\"schema_version\": 1";
  out += ", \"kind\": \"snapq-accuracy\"";
  out += ", \"benchmark\": \"" + obs::JsonEscape(name) + "\"";
  out += ", \"repetitions\": " + std::to_string(repetitions);
  out += std::string(", \"quick\": ") + (quick ? "true" : "false");
  out += ", \"error_budget\": " + JsonNumber(error_budget);
  out += ", \"cells\": [";
  bool first = true;
  for (const CellResult& c : cells) {
    if (!first) out += ", ";
    first = false;
    out += "{\"loss\": " + JsonNumber(c.loss);
    out += ", \"threshold\": " + JsonNumber(c.threshold);
    out += ", \"audited\": " + std::to_string(c.audited);
    out += ", \"violations\": " + std::to_string(c.violations);
    out += ", \"violation_rate\": " + JsonNumber(c.violation_rate());
    out += ", \"budget_burn\": " +
           JsonNumber(error_budget > 0.0 ? c.violation_rate() / error_budget
                                         : 0.0);
    out += ", \"discovery_audited\": " + std::to_string(c.discovery_audited);
    out +=
        ", \"discovery_violations\": " + std::to_string(c.discovery_violations);
    out += ", \"error_p50\": " + JsonNumber(c.errors.Percentile(50.0));
    out += ", \"error_p90\": " + JsonNumber(c.errors.Percentile(90.0));
    out += ", \"error_p99\": " + JsonNumber(c.errors.Percentile(99.0));
    out += ", \"error_max\": " + JsonNumber(c.errors.max_seen());
    out += ", \"error_mean\": " + JsonNumber(c.errors.mean()) + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

SNAPQ_BENCHMARK(accuracy_audit,
                "Accuracy audit: ground-truth error CDF and bound "
                "violation rate vs loss and T") {
  bench::Driver driver(
      ctx,
      "Accuracy audit: measured estimate error vs the promised bound T",
      "weather workload, N=100; frozen discovery audit (query round + "
      "representation sweep), then a drifting window with maintenance "
      "repairs, sweep-audited every tick");

  const obs::AccuracyAuditConfig audit_config;  // default 1% error budget
  const Time drift_ticks = ctx.Scaled(kDriftTicks);
  std::vector<CellResult> cells;
  bool lossless_violation = false;

  TablePrinter table({"loss", "T", "audited", "viol@disc", "viol",
                      "viol rate", "burn", "p50|e|", "p99|e|", "max|e|"});
  for (double loss : {0.0, 0.05, 0.1, 0.2}) {
    for (double t : {0.1, 1.0, 10.0}) {
      CellResult cell;
      cell.loss = loss;
      cell.threshold = t;
      // Serial over seeds: every estimate's |error| folds into one
      // histogram per cell, so the sidecar is bit-identical for any
      // --jobs value (the perf-smoke determinism gate diffs it).
      for (int rep = 0; rep < ctx.repetitions; ++rep) {
        const uint64_t seed = bench::kBaseSeed + static_cast<uint64_t>(rep);
        SensitivityConfig config;
        config.workload = WorkloadKind::kWeather;
        config.threshold = t;
        config.loss_probability = loss;
        config.seed = seed;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;
        obs::AccuracyAuditor& audit = net.EnableAccuracyAudit(audit_config);

        // Phase 1 (frozen data): the query-path hook, then the sweep.
        (void)net.Query("SELECT avg(value) FROM sensors USE SNAPSHOT");
        net.AuditSnapshotNow();
        cell.discovery_audited += audit.audited_total();
        cell.discovery_violations += audit.violations_total();

        // Phase 2: readings random-walk away from the trained state while
        // maintenance repairs what the violation reports reach; every
        // tick is sweep-audited against the deployment T.
        const Time drift_end = net.now() + drift_ticks;
        net.ScheduleMaintenance(net.now() + kMaintInterval, drift_end,
                                kMaintInterval);
        Rng drift_rng = Rng(seed).SplitNamed("accuracy-drift");
        std::vector<double> values(net.num_nodes());
        for (NodeId i = 0; i < net.num_nodes(); ++i) {
          values[i] = net.agent(i).measurement();
        }
        for (Time tick = net.now() + 1; tick <= drift_end; ++tick) {
          net.sim().ScheduleAt(tick, [&net, &values, &drift_rng] {
            for (NodeId i = 0; i < net.num_nodes(); ++i) {
              values[i] += drift_rng.Gaussian(0.0, kDriftStep);
            }
            net.SetMeasurements(values);
            net.AuditSnapshotNow();
          });
        }
        net.RunAll();

        cell.audited += audit.audited_total();
        cell.violations += audit.violations_total();
        cell.errors.MergeFrom(audit.error_histogram());
        obs::MetricSink().MergeFrom(net.sim().registry());
      }
      if (loss == 0.0 && cell.discovery_violations > 0) {
        lossless_violation = true;
      }
      table.AddRow({TablePrinter::Num(loss, 2), TablePrinter::Num(t, 1),
                    std::to_string(cell.audited),
                    std::to_string(cell.discovery_violations),
                    std::to_string(cell.violations),
                    TablePrinter::Num(cell.violation_rate(), 4),
                    TablePrinter::Num(
                        cell.violation_rate() / audit_config.error_budget, 2),
                    TablePrinter::Num(cell.errors.Percentile(50.0), 4),
                    TablePrinter::Num(cell.errors.Percentile(99.0), 4),
                    TablePrinter::Num(cell.errors.max_seen(), 4)});
      cells.push_back(std::move(cell));
    }
  }
  table.Print(std::cout);

  if (ctx.write_sidecars) {
    const std::string base = ctx.argv0.empty() ? ctx.name : ctx.argv0;
    const std::string path =
        bench::SidecarPath(base.c_str(), ".accuracy.json");
    if (bench::WriteFileAtomic(
            path, CellsToJson(cells, ctx.name, ctx.repetitions, ctx.quick,
                              audit_config.error_budget))) {
      std::printf("accuracy sidecar: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }

  if (lossless_violation) {
    std::printf("ACCURACY GATE FAILED: discovery-time bound violations with "
                "zero message loss (fresh representations must honor T when "
                "nothing is lost)\n");
    ctx.exit_code = 1;
  } else {
    std::printf("accuracy gate: lossless discovery audits have zero "
                "violations\n");
  }
}
