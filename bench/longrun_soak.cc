// Long-running soak: the §6.3 network (weather data, maintenance every
// 100 time units, 5% snooping, background query traffic) run for ten
// Figure-14 horizons with failures injected along the way — a mid-run
// loss burst and a batch of node deaths — while the telemetry recorder
// trends health, message rates and process RSS, and the SLO watchdog
// checks that the deployment absorbs the faults:
//
//   * coverage must recover (never sit below the floor for a sustained
//     window),
//   * spurious representatives must stay bounded,
//   * resident memory must stay flat (the slope SLO): the horizon is 10x
//     fig14's, so anything that grows with time shows up here first.
//
// The run leaves a `.timeline.json` sidecar (tools/timeline_check.py
// validates and diffs it) and exits non-zero on any confirmed breach; a
// breach also dumps a `.blackbox.json` flight-recorder snapshot with the
// journal window around the incident.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "longrun_common.h"
#include "obs/timeline.h"

namespace {

using namespace snapq;

constexpr Time kSoakMultiple = 10;  // x fig14's 5,000-tick horizon
constexpr Time kTelemetryInterval = 25;
constexpr double kBaseLoss = 0.05;
constexpr double kBurstLoss = 0.4;

}  // namespace

SNAPQ_BENCHMARK(longrun_soak,
                "Soak: 10x fig14 horizon with fault injection, SLO "
                "watchdog and timeline sidecar") {
  bench::Driver driver(
      ctx, "Soak: long-horizon maintenance under fault injection",
      "N=100, range=0.7, T=0.1, update every 100 units, snoop=5%, "
      "loss=5% with a 0.4 burst and 5 node deaths mid-run");

  const Time horizon = ctx.Scaled(bench::kLongHorizon * kSoakMultiple);
  const uint64_t seed = bench::kBaseSeed;

  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = 0.7;
  config.loss_probability = kBaseLoss;
  config.snoop_probability = 0.05;
  config.snapshot.threshold = 0.1;
  config.seed = seed;
  SensorNetwork net(config);

  Rng data_rng = Rng(seed).SplitNamed("weather-soak");
  Result<Dataset> dataset = Dataset::Create(GenerateWeatherWindows(
      WeatherConfig{}, 100, static_cast<size_t>(horizon) + 1, data_rng));
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(bench::kLongDiscovery);
  net.RunElection(bench::kLongDiscovery);

  // Background query traffic, as in the fig14/15 runs.
  Rng query_rng = Rng(seed).SplitNamed("queries-soak");
  const double w = std::sqrt(0.1);
  for (Time t = net.now() + 1; t < horizon; ++t) {
    net.sim().ScheduleAt(t, [&net, &query_rng, w] {
      const Point center{query_rng.NextDouble(), query_rng.NextDouble()};
      const Rect region = Rect::CenteredSquare(center, w);
      const NodeId sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
      for (NodeId i = 0; i < net.num_nodes(); ++i) {
        if (i == sink || !region.Contains(net.position(i))) continue;
        Message msg;
        msg.type = MessageType::kData;
        msg.from = i;
        msg.to = sink;
        msg.value = net.agent(i).measurement();
        net.sim().Send(msg);
      }
    });
  }

  // Telemetry + watchdog. The blackbox lands next to the timeline sidecar.
  const std::string base = ctx.argv0.empty() ? ctx.name : ctx.argv0;
  obs::TelemetryConfig telemetry_config;
  telemetry_config.sample_interval = kTelemetryInterval;
  telemetry_config.blackbox_path =
      bench::SidecarPath(base.c_str(), ".blackbox.json");
  telemetry_config.blackbox_label = ctx.name;
  net.EnableTelemetry(telemetry_config);
  // Topology & churn observatory: per-link delivery stats ride the message
  // path (fixed-table, allocation-free), and every telemetry sample also
  // analyzes the live radio graph, so partitions / weak links / churn
  // trend in the timeline alongside health and RSS.
  net.EnableTopologyMonitor();
  // Ground-truth accuracy auditing rides the telemetry sampling: every
  // sample sweeps the live representation state against actual readings,
  // so the soak also proves the auditor itself stays memory-flat (the
  // rss slope SLO below covers it) across a 50k-tick horizon.
  net.EnableAccuracyAudit();

  // The sustain windows span several maintenance rounds, so a burst or a
  // death batch must go unrepaired for multiple updates to count as an
  // incident.
  SNAPQ_CHECK(net.AddSloRule("health.coverage value >= 0.5 for 400"));
  SNAPQ_CHECK(net.AddSloRule("health.spurious_reps ewma <= 25"));
  SNAPQ_CHECK(net.AddSloRule("proc.rss_kb slope <= 8"));
  // Topology SLOs: at range 0.7 the radio graph must stay one component
  // with no isolated survivors — five random deaths cannot partition it —
  // and representative churn must settle between maintenance rounds
  // rather than storm.
  SNAPQ_CHECK(net.AddSloRule("topo.partitions value <= 1 for 400"));
  SNAPQ_CHECK(net.AddSloRule("topo.isolated_nodes value <= 0 for 400"));
  SNAPQ_CHECK(net.AddSloRule("churn.flap_rate ewma <= 30"));

  // Fault injection: a loss burst at one third of the horizon (restored
  // three maintenance rounds later) and five node deaths at two thirds.
  const Time burst_at = horizon / 3;
  net.sim().ScheduleAt(burst_at,
                       [&net] { net.sim().SetLossProbability(kBurstLoss); });
  net.sim().ScheduleAt(burst_at + 3 * bench::kUpdateInterval,
                       [&net] { net.sim().SetLossProbability(kBaseLoss); });
  Rng death_rng = Rng(seed).SplitNamed("deaths-soak");
  net.sim().ScheduleAt((2 * horizon) / 3, [&net, &death_rng] {
    for (int i = 0; i < 5; ++i) {
      net.sim().Kill(static_cast<NodeId>(death_rng.UniformInt(0, 99)));
    }
  });

  net.ScheduleMaintenance(net.now() + bench::kUpdateInterval, horizon,
                          bench::kUpdateInterval);
  net.ScheduleTelemetrySampling(net.now() + kTelemetryInterval, horizon);
  net.RunAll();
  obs::MetricSink().MergeFrom(net.sim().registry());

  // Verdict + sidecar.
  const obs::SloWatchdog& watchdog = *net.watchdog();
  std::printf("soak horizon %lld, %llu telemetry samples\n",
              static_cast<long long>(horizon),
              static_cast<unsigned long long>(net.telemetry()->num_samples()));
  std::printf("%s", watchdog.ToString().c_str());

  if (ctx.write_sidecars) {
    obs::TimelineMeta meta;
    meta.benchmark = ctx.name;
    meta.git_sha = bench::GitSha();
    meta.quick = ctx.quick;
    meta.horizon = horizon;
    const std::string path =
        bench::SidecarPath(base.c_str(), ".timeline.json");
    if (obs::WriteTextFileAtomic(
            path, obs::TimelineToJson(*net.telemetry(), &watchdog, meta))) {
      std::printf("timeline sidecar: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }

  if (ctx.write_sidecars) {
    std::vector<Point> positions;
    positions.reserve(net.num_nodes());
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      positions.push_back(net.position(i));
    }
    const obs::TopologyMonitor& topo = *net.topology_monitor();
    obs::TopoMapMeta topo_meta;
    topo_meta.benchmark = ctx.name;
    topo_meta.git_sha = bench::GitSha();
    topo_meta.quick = ctx.quick;
    topo_meta.t = net.now();
    topo_meta.extras = {
        {"horizon", static_cast<double>(horizon)},
        {"samples", static_cast<double>(topo.num_samples())},
        {"flaps_total", static_cast<double>(topo.churn().flaps_total())},
        {"elections_total",
         static_cast<double>(topo.churn().elections_total())},
    };
    bench::WriteTopoSidecar(base.c_str(), topo.last(), positions,
                            topo.link_observer().SortedLinks(), topo_meta);
  }

  if (!watchdog.healthy()) {
    std::printf("SOAK UNHEALTHY: %zu confirmed breach(es), blackbox at %s\n",
                watchdog.breaches().size(),
                telemetry_config.blackbox_path.c_str());
    ctx.exit_code = 1;
  } else {
    std::printf("soak healthy: no confirmed breaches\n");
  }
}
