// Baseline comparison (§2): counting sketches with multipath aggregation
// [3] vs TAG trees [11] vs snapshot queries, on whole-network SUM under
// message loss. Three columns the paper's argument predicts:
//
//   * the TAG tree is cheap per answer but fragile (lost subtrees);
//   * multipath sketches are loss-robust but pay N broadcasts per epoch
//     and carry the FM approximation error even at zero loss ("sketches
//     would require continuous rebroadcasting of values for updates, thus
//     defeating the purpose of reducing resource consumption");
//   * snapshot queries answer from a handful of representatives with
//     model-accurate values; loss only matters on the short paths the few
//     data carriers use.
#include <cmath>
#include <iostream>
#include <vector>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/innetwork.h"
#include "query/multipath.h"

namespace {

using namespace snapq;

struct Row {
  RunningStats error;     // relative SUM error
  RunningStats messages;  // data messages per query
};

/// One repetition's raw (error, messages) samples per strategy, in query
/// order — the reps run in parallel and fold in seed order.
struct RepSamples {
  std::vector<double> tree_err, sketch_err, snapshot_err;
  std::vector<double> tree_msgs, sketch_msgs, snapshot_msgs;
};

void Measure(double loss, int repetitions, int queries, int jobs, Row* tree,
             Row* sketch, Row* snapshot) {
  const auto per_rep = exec::ParallelMap<RepSamples>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        SensitivityConfig config;
        config.workload = WorkloadKind::kWeather;  // non-negative readings,
                                                   // as FM sum sketches need
        config.threshold = 0.5;
        config.transmission_range = 0.35;
        config.loss_probability = loss;
        config.seed = bench::kBaseSeed + r;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;
        Rng rng(config.seed ^ 0xBA5E11AE5ULL);

        double truth = 0.0;
        for (NodeId i = 0; i < net.num_nodes(); ++i) {
          truth += net.agent(i).measurement();
        }
        RepSamples samples;
        auto record = [&](std::vector<double>* err, std::vector<double>* msgs,
                          double answer, uint64_t n) {
          err->push_back(std::abs(answer - truth) / std::abs(truth));
          msgs->push_back(static_cast<double>(n));
        };

        for (int q = 0; q < queries; ++q) {
          const NodeId sink = static_cast<NodeId>(rng.UniformInt(0, 99));
          {
            InNetworkAggregator agg(&net.sim(), &net.agents());
            const InNetworkResult t = agg.Execute(
                Rect::UnitSquare(), AggregateFunction::kSum, sink, false);
            record(&samples.tree_err, &samples.tree_msgs,
                   t.aggregate.value_or(0.0), t.reply_messages);
            const InNetworkResult s = agg.Execute(
                Rect::UnitSquare(), AggregateFunction::kSum, sink, true);
            record(&samples.snapshot_err, &samples.snapshot_msgs,
                   s.aggregate.value_or(0.0), s.reply_messages);
          }
          {
            MultipathSketchAggregator agg(&net.sim(), &net.agents());
            const MultipathResult m = agg.Execute(Rect::UnitSquare(), sink);
            record(&samples.sketch_err, &samples.sketch_msgs,
                   m.estimate.value_or(0.0), m.reply_messages);
          }
        }
        return samples;
      });
  for (const RepSamples& samples : per_rep) {
    for (double v : samples.tree_err) tree->error.Add(v);
    for (double v : samples.tree_msgs) tree->messages.Add(v);
    for (double v : samples.sketch_err) sketch->error.Add(v);
    for (double v : samples.sketch_msgs) sketch->messages.Add(v);
    for (double v : samples.snapshot_err) snapshot->error.Add(v);
    for (double v : samples.snapshot_msgs) snapshot->messages.Add(v);
  }
}

}  // namespace

SNAPQ_BENCHMARK(baseline_sketches,
                "Baseline: TAG tree vs multipath sketches vs snapshot") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Baseline: TAG tree vs multipath sketches [3] vs snapshot queries",
      "N=100, weather workload, T=0.5, range=0.35 (multi-hop), "
      "whole-network SUM; relative error and data messages per query. "
      "The sketch sums ceil(v), a ~+5%% systematic bias at wind scale.");

  const int reps = static_cast<int>(ctx.Scaled(5));
  const int queries = static_cast<int>(ctx.Scaled(20));
  TablePrinter table({"P_loss", "tree err", "sketch err", "snapshot err",
                      "tree msgs", "sketch msgs", "snapshot msgs"});
  for (double loss : {0.0, 0.1, 0.2, 0.3}) {
    Row tree, sketch, snapshot;
    Measure(loss, reps, queries, ctx.jobs, &tree, &sketch, &snapshot);
    table.AddRow({TablePrinter::Num(loss, 1),
                  TablePrinter::Num(100.0 * tree.error.mean(), 1) + "%",
                  TablePrinter::Num(100.0 * sketch.error.mean(), 1) + "%",
                  TablePrinter::Num(100.0 * snapshot.error.mean(), 1) + "%",
                  TablePrinter::Num(tree.messages.mean(), 0),
                  TablePrinter::Num(sketch.messages.mean(), 0),
                  TablePrinter::Num(snapshot.messages.mean(), 0)});
  }
  table.Print(std::cout);
  std::printf("\n(data messages only; all three pay ~N request/flood "
              "messages per epoch. The snapshot additionally amortizes its "
              "election over the query stream.)\n");
}
