#include "model/robust_fit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace snapq {
namespace {

std::vector<ObservationPair> Pairs(
    std::initializer_list<std::pair<double, double>> xs) {
  std::vector<ObservationPair> out;
  Time t = 0;
  for (const auto& [x, y] : xs) out.push_back({x, y, t++});
  return out;
}

TEST(FitWeightedTest, UniformWeightsEqualOls) {
  const auto pairs = Pairs({{1, 2}, {2, 3}, {3, 5}});
  const LinearModel wls =
      FitWeighted(pairs, std::vector<double>(3, 1.0));
  EXPECT_NEAR(wls.a, 1.5, 1e-12);
  EXPECT_NEAR(wls.b, 1.0 / 3.0, 1e-12);
}

TEST(FitWeightedTest, ZeroWeightIgnoresPoint) {
  // Third point is an outlier with zero weight: fit the first two exactly.
  const auto pairs = Pairs({{0, 1}, {1, 3}, {2, 100}});
  const LinearModel m = FitWeighted(pairs, {1.0, 1.0, 0.0});
  EXPECT_NEAR(m.a, 2.0, 1e-9);
  EXPECT_NEAR(m.b, 1.0, 1e-9);
}

TEST(FitWeightedTest, DegenerateXGivesWeightedMean) {
  const auto pairs = Pairs({{2, 10}, {2, 20}});
  const LinearModel m = FitWeighted(pairs, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(m.a, 0.0);
  EXPECT_DOUBLE_EQ(m.b, 12.5);
}

TEST(FitForMetricTest, SseMatchesLemma1) {
  const auto pairs = Pairs({{0, 1}, {1, 3}, {2, 5}, {3, 6.5}});
  const LinearModel robust =
      FitForMetric(pairs, ErrorMetric::SumSquared());
  RegressionStats stats;
  for (const auto& p : pairs) stats.Add(p.x, p.y);
  const LinearModel ls = stats.Fit();
  EXPECT_NEAR(robust.a, ls.a, 1e-12);
  EXPECT_NEAR(robust.b, ls.b, 1e-12);
}

TEST(FitForMetricTest, AbsoluteFitIgnoresOutlier) {
  // Nine points on y = 2x + 1 plus one gross outlier. LS tilts toward the
  // outlier; the LAD fit must stay on the line.
  std::vector<ObservationPair> pairs;
  for (int k = 0; k < 9; ++k) {
    pairs.push_back({static_cast<double>(k), 2.0 * k + 1.0, k});
  }
  pairs.push_back({4.5, 500.0, 9});

  const ErrorMetric abs_metric = ErrorMetric::Absolute();
  const LinearModel lad = FitForMetric(pairs, abs_metric);
  EXPECT_NEAR(lad.a, 2.0, 0.05);
  EXPECT_NEAR(lad.b, 1.0, 0.2);

  RegressionStats stats;
  for (const auto& p : pairs) stats.Add(p.x, p.y);
  const LinearModel ls = stats.Fit();
  EXPECT_LT(TotalError(pairs, abs_metric, lad),
            TotalError(pairs, abs_metric, ls));
}

TEST(FitForMetricTest, RelativeFitFavorsSmallMagnitudePoints) {
  // Two clusters: small-|y| points on y = x, large-|y| points offset by a
  // constant 10. The relative fit must track the small values much more
  // closely than LS does.
  const auto pairs =
      Pairs({{1, 1}, {2, 2}, {3, 3}, {100, 110}, {200, 210}});
  const ErrorMetric rel = ErrorMetric::Relative();
  const LinearModel relative = FitForMetric(pairs, rel);
  RegressionStats stats;
  for (const auto& p : pairs) stats.Add(p.x, p.y);
  const LinearModel ls = stats.Fit();
  EXPECT_LT(TotalError(pairs, rel, relative),
            TotalError(pairs, rel, ls) + 1e-12);
  // Near the small cluster the relative fit is nearly exact.
  EXPECT_NEAR(relative.Estimate(2.0), 2.0, 0.2);
}

TEST(FitForMetricTest, EmptyPairsGiveZeroModel) {
  const std::vector<ObservationPair> empty;
  const LinearModel m = FitForMetric(empty, ErrorMetric::Absolute());
  EXPECT_DOUBLE_EQ(m.a, 0.0);
  EXPECT_DOUBLE_EQ(m.b, 0.0);
}

// Property: on random instances, the metric-specific fit never does worse
// (under its own metric) than the plain least-squares line.
class RobustFitProperty : public ::testing::TestWithParam<int> {};

TEST_P(RobustFitProperty, NeverWorseThanLeastSquaresUnderOwnMetric) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = static_cast<size_t>(rng.UniformInt(3, 20));
  std::vector<ObservationPair> pairs;
  RegressionStats stats;
  for (size_t k = 0; k < n; ++k) {
    const double x = rng.UniformDouble(-10, 10);
    double y = 1.7 * x + 4.0 + rng.Gaussian(0, 2.0);
    if (rng.Bernoulli(0.15)) y += rng.UniformDouble(-80, 80);  // outliers
    pairs.push_back({x, y, static_cast<Time>(k)});
    stats.Add(x, y);
  }
  const LinearModel ls = stats.Fit();
  for (const ErrorMetric& metric :
       {ErrorMetric::Absolute(), ErrorMetric::Relative(1.0)}) {
    const LinearModel fit = FitForMetric(pairs, metric);
    EXPECT_LE(TotalError(pairs, metric, fit),
              TotalError(pairs, metric, ls) + 1e-9)
        << metric.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustFitProperty, ::testing::Range(1, 20));

}  // namespace
}  // namespace snapq
