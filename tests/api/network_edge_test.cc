// Edge cases of the SensorNetwork facade and simulator accessors not
// covered by the main suites.
#include <gtest/gtest.h>

#include "api/network.h"

namespace snapq {
namespace {

NetworkConfig TinyConfig() {
  NetworkConfig config;
  config.num_nodes = 3;
  config.positions = {{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}};
  config.seed = 5;
  return config;
}

TEST(SensorNetworkEdgeTest, SetMeasurementsUpdatesEveryAgent) {
  SensorNetwork net(TinyConfig());
  net.SetMeasurements({1.5, 2.5, 3.5});
  EXPECT_DOUBLE_EQ(net.agent(0).measurement(), 1.5);
  EXPECT_DOUBLE_EQ(net.agent(1).measurement(), 2.5);
  EXPECT_DOUBLE_EQ(net.agent(2).measurement(), 3.5);
}

TEST(SensorNetworkEdgeDeathTest, SetMeasurementsSizeMismatchAborts) {
  SensorNetwork net(TinyConfig());
  EXPECT_DEATH(net.SetMeasurements({1.0}), "SNAPQ_CHECK");
}

TEST(SensorNetworkEdgeTest, QueryBeforeElectionStillAnswers) {
  // Without an election everyone is UNDEFINED: a snapshot query falls back
  // to self-reports (undefined nodes are "not represented").
  SensorNetwork net(TinyConfig());
  net.SetMeasurements({1.0, 2.0, 3.0});
  const Result<QueryResult> r = net.Query(
      "SELECT sum(value) FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r->aggregate, 6.0);
  EXPECT_EQ(r->responders, 3u);
}

TEST(SensorNetworkEdgeTest, DatasetAccessorReflectsAttachment) {
  SensorNetwork net(TinyConfig());
  EXPECT_EQ(net.dataset(), nullptr);
  std::vector<TimeSeries> series(3, TimeSeries({1.0, 2.0}));
  ASSERT_TRUE(net.AttachDataset(std::move(Dataset::Create(series).value()))
                  .ok());
  ASSERT_NE(net.dataset(), nullptr);
  EXPECT_EQ(net.dataset()->horizon(), 2u);
}

TEST(SimulatorEdgeTest, DrainKillsAtZero) {
  NetworkConfig config = TinyConfig();
  config.energy.initial_battery = 5.0;
  SensorNetwork net(config);
  net.sim().Drain(1, 10.0);
  EXPECT_FALSE(net.sim().alive(1));
  EXPECT_TRUE(net.sim().alive(0));
}

TEST(SensorNetworkEdgeTest, SingleNodeNetworkElectsItself) {
  NetworkConfig config;
  config.num_nodes = 1;
  config.positions = {{0.5, 0.5}};
  SensorNetwork net(config);
  net.SetMeasurements({7.0});
  const ElectionStats stats = net.RunElection(0);
  EXPECT_EQ(stats.num_active, 1u);
  EXPECT_EQ(stats.num_passive, 0u);
  const Result<QueryResult> r = net.Query(
      "SELECT avg(value) FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r->aggregate, 7.0);
}

TEST(CheckMacroTest, ComparisonsPassAndFail) {
  SNAPQ_CHECK_GE(2, 2);
  SNAPQ_CHECK_GT(3, 2);
  SNAPQ_CHECK_LE(2, 2);
  SNAPQ_CHECK_LT(1, 2);
  SNAPQ_CHECK_EQ(5, 5);
  SNAPQ_CHECK_NE(5, 6);
  EXPECT_DEATH(SNAPQ_CHECK_GT(1, 2), "SNAPQ_CHECK");
  EXPECT_DEATH(SNAPQ_CHECK_EQ(1, 2), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
