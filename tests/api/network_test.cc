// Integration tests of the SensorNetwork facade: dataset feed, training,
// election, SQL queries and maintenance, end to end.
#include "api/network.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

NetworkConfig SmallConfig(uint64_t seed = 1) {
  NetworkConfig config;
  config.num_nodes = 10;
  config.seed = seed;
  config.snapshot.max_wait = 6;
  config.snapshot.rule4_hard_cap = 16;
  return config;
}

Dataset LockstepDataset(size_t nodes, size_t horizon) {
  // Node i's series = (i+1) * (100 + t): exact pairwise linear relations.
  std::vector<TimeSeries> series(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t t = 0; t < horizon; ++t) {
      series[i].Append(static_cast<double>(i + 1) *
                       (100.0 + static_cast<double>(t)));
    }
  }
  Result<Dataset> ds = Dataset::Create(std::move(series));
  return std::move(ds).value();
}

TEST(SensorNetworkTest, ConstructionPlacesNodesInArea) {
  SensorNetwork net(SmallConfig());
  EXPECT_EQ(net.num_nodes(), 10u);
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_TRUE(Rect::UnitSquare().Contains(net.position(i)));
  }
}

TEST(SensorNetworkTest, ExplicitPositionsRespected) {
  NetworkConfig config = SmallConfig();
  config.num_nodes = 2;
  config.positions = {{0.25, 0.75}, {0.5, 0.5}};
  SensorNetwork net(config);
  EXPECT_DOUBLE_EQ(net.position(0).x, 0.25);
  EXPECT_DOUBLE_EQ(net.position(1).y, 0.5);
}

TEST(SensorNetworkTest, AttachDatasetValidatesNodeCount) {
  SensorNetwork net(SmallConfig());
  Dataset ds = LockstepDataset(3, 5);
  EXPECT_FALSE(net.AttachDataset(std::move(ds)).ok());
}

TEST(SensorNetworkTest, DatasetFeedUpdatesMeasurements) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 20)).ok());
  net.RunUntil(5);
  // At t=5 node 2's reading is 3 * 105.
  EXPECT_DOUBLE_EQ(net.agent(2).measurement(), 315.0);
}

TEST(SensorNetworkTest, TrainThenElectProducesOneRepresentative) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 40)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  const ElectionStats stats = net.RunElection(30);
  // Exact lockstep linear data: one representative suffices.
  EXPECT_EQ(stats.num_active, 1u);
  EXPECT_EQ(stats.num_passive, 9u);
  EXPECT_EQ(stats.num_undefined, 0u);
  EXPECT_LE(stats.max_messages_per_node, 5.0);
}

TEST(SensorNetworkTest, SnapshotQueryViaSql) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 40)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  net.RunElection(30);
  const Result<QueryResult> regular =
      net.Query("SELECT sum(value) FROM sensors WHERE loc IN EVERYWHERE");
  const Result<QueryResult> snap = net.Query(
      "SELECT sum(value) FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  ASSERT_TRUE(regular.ok());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(regular->responders, 10u);
  EXPECT_EQ(snap->responders, 1u);
  ASSERT_TRUE(snap->aggregate.has_value());
  EXPECT_NEAR(*snap->aggregate, *regular->aggregate, 1e-6);
}

TEST(SensorNetworkTest, DrillThroughSnapshotRowsCoverEveryNode) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 40)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  net.RunElection(30);
  const Result<QueryResult> r = net.Query(
      "SELECT loc, value FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 10u);
}

TEST(SensorNetworkTest, MaintenanceKeepsSnapshotAlive) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 200)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  net.RunElection(30);
  std::vector<MaintenanceRoundStats> rounds;
  net.ScheduleMaintenance(80, 200, 40,
                          [&](const MaintenanceRoundStats& s) {
                            rounds.push_back(s);
                          });
  net.RunAll();
  ASSERT_EQ(rounds.size(), 3u);
  for (const auto& r : rounds) {
    EXPECT_EQ(r.snapshot_size, 1u);  // perfect data: stays at one rep
    EXPECT_EQ(r.num_spurious, 0u);
  }
}

TEST(SensorNetworkTest, SameSeedReproducesExactly) {
  auto run = [](uint64_t seed) {
    SensorNetwork net(SmallConfig(seed));
    Status s = net.AttachDataset(LockstepDataset(10, 40));
    net.ScheduleTrainingBroadcasts(0, 10);
    net.RunUntil(30);
    const ElectionStats stats = net.RunElection(30);
    std::vector<NodeId> reps;
    for (NodeId i = 0; i < 10; ++i) {
      reps.push_back(net.agent(i).representative());
    }
    return std::make_pair(stats.num_active, reps);
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(SensorNetworkTest, SnapshotViewMatchesAgents) {
  SensorNetwork net(SmallConfig());
  ASSERT_TRUE(net.AttachDataset(LockstepDataset(10, 40)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  net.RunElection(30);
  const SnapshotView view = net.Snapshot();
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(view.node(i).mode, net.agent(i).mode());
    EXPECT_EQ(view.node(i).representative, net.agent(i).representative());
  }
}

TEST(SensorNetworkDeathTest, ZeroNodesAborts) {
  NetworkConfig config;
  config.num_nodes = 0;
  EXPECT_DEATH(SensorNetwork net(config), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
