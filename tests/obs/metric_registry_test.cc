#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace snapq::obs {
namespace {

TEST(ObsRegistryTest, CounterSemantics) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("net.sent");
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(reg.GetCounter("net.sent"), c);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(ObsRegistryTest, GaugeSemantics) {
  MetricRegistry reg;
  Gauge* g = reg.GetGauge("snapshot.size");
  g->Set(12.0);
  EXPECT_DOUBLE_EQ(g->value(), 12.0);
  g->Add(-2.0);
  EXPECT_DOUBLE_EQ(g->value(), 10.0);
  g->SetMax(3.0);  // lower value does not stick
  EXPECT_DOUBLE_EQ(g->value(), 10.0);
  g->SetMax(15.0);
  EXPECT_DOUBLE_EQ(g->value(), 15.0);
}

TEST(ObsRegistryTest, HistogramBucketsAndStats) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("lat", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0 (<=1)
  h->Observe(5.0);    // bucket 1 (<=10)
  h->Observe(50.0);   // bucket 2 (<=100)
  h->Observe(500.0);  // overflow bucket
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 555.5);
  EXPECT_DOUBLE_EQ(h->max_seen(), 500.0);
  ASSERT_EQ(h->buckets().size(), 4u);  // bounds + overflow
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 1u);
  EXPECT_EQ(h->buckets()[3], 1u);
  // Bounds of a re-registration are ignored; instrument is shared.
  EXPECT_EQ(reg.GetHistogram("lat", {7.0}), h);
  EXPECT_EQ(h->bounds().size(), 3u);
}

TEST(ObsRegistryTest, PerNodeLabeledInstruments) {
  MetricRegistry reg;
  reg.GetCounter("election.msgs", 3)->Inc(2);
  reg.GetCounter("election.msgs", 17)->Inc(5);
  reg.GetGauge("election.sent", 17)->Set(6.0);
  EXPECT_EQ(LabeledName("election.msgs", 17), "election.msgs{node=17}");
  const MetricRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.at("election.msgs{node=3}"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("election.msgs{node=17}"), 5.0);
  EXPECT_DOUBLE_EQ(snap.at("election.sent{node=17}"), 6.0);
}

TEST(ObsRegistryTest, SnapshotAndDelta) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("ops");
  Gauge* g = reg.GetGauge("level");
  c->Inc(10);
  g->Set(2.0);
  const MetricRegistry::Snapshot before = reg.TakeSnapshot();
  c->Inc(7);
  g->Set(5.0);
  const MetricRegistry::Snapshot delta = reg.DeltaSince(before);
  EXPECT_DOUBLE_EQ(delta.at("ops"), 7.0);
  EXPECT_DOUBLE_EQ(delta.at("level"), 3.0);
  // Instruments registered after the snapshot show their full value.
  reg.GetCounter("late")->Inc(3);
  EXPECT_DOUBLE_EQ(reg.DeltaSince(before).at("late"), 3.0);
}

TEST(ObsRegistryTest, MergeAddsCountersAndMaxesGauges) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("runs")->Inc(2);
  b.GetCounter("runs")->Inc(3);
  a.GetGauge("election.messages_sent", 1)->Set(4.0);
  b.GetGauge("election.messages_sent", 1)->Set(6.0);
  b.GetGauge("election.messages_sent", 2)->Set(5.0);
  a.GetHistogram("h", {1.0, 2.0})->Observe(0.5);
  b.GetHistogram("h", {1.0, 2.0})->Observe(1.5);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("runs")->value(), 5u);
  // Gauges keep the high-watermark: merging ten elections whose per-node
  // cost never exceeded six must still read <= 6, never the sum.
  EXPECT_DOUBLE_EQ(a.GetGauge("election.messages_sent", 1)->value(), 6.0);
  EXPECT_DOUBLE_EQ(a.GetGauge("election.messages_sent", 2)->value(), 5.0);
  Histogram* h = a.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
}

TEST(ObsRegistryTest, ToJsonParsesBackAndToCsvShape) {
  MetricRegistry reg;
  reg.GetCounter("net.sent")->Inc(42);
  reg.GetGauge("size", 7)->Set(3.5);
  reg.GetHistogram("lat", {1.0})->Observe(2.0);
  const std::string json = reg.ToJson();
  // Spot-check that the flat sections are valid flat JSON objects.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"net.sent\":42"), std::string::npos);
  EXPECT_NE(json.find("\"size{node=7}\":3.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("counter,net.sent,42"), std::string::npos);
  EXPECT_NE(csv.find("gauge,size{node=7},3.5"), std::string::npos);
}

TEST(ObsRegistryTest, ResetClearsValuesKeepsInstruments) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("x");
  c->Inc(9);
  const size_t instruments = reg.num_instruments();
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.num_instruments(), instruments);
  EXPECT_EQ(reg.GetCounter("x"), c);
}

}  // namespace
}  // namespace snapq::obs
