// Randomized equivalence: the grid-built CSR adjacency must be
// element-for-element identical to the historical brute-force O(n^2)
// build — for any placement, any (possibly asymmetric) ranges, and after
// arbitrary SetPosition churn. This is the determinism gate behind the
// byte-identical-bench-output guarantee: the spatial index may change how
// neighbors are found, never which ones or in what order.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "net/link_model.h"

namespace snapq {
namespace {

std::vector<std::vector<NodeId>> BruteAdjacency(
    const std::vector<Point>& positions, const std::vector<double>& ranges) {
  const size_t n = positions.size();
  std::vector<std::vector<NodeId>> rows(n);
  for (NodeId i = 0; i < n; ++i) {
    const double r2 = ranges[i] * ranges[i];
    for (NodeId j = 0; j < n; ++j) {
      if (i != j && DistanceSquared(positions[i], positions[j]) <= r2) {
        rows[i].push_back(j);
      }
    }
  }
  return rows;
}

bool BruteConnected(const std::vector<std::vector<NodeId>>& rows) {
  const size_t n = rows.size();
  if (n == 0) return true;
  std::vector<std::vector<NodeId>> undirected(n);
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId j : rows[i]) {
      undirected[i].push_back(j);
      undirected[j].push_back(i);
    }
  }
  std::vector<bool> seen(n, false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : undirected[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

void ExpectRowsEqual(const LinkModel& lm,
                     const std::vector<std::vector<NodeId>>& brute,
                     const char* context, int trial) {
  ASSERT_EQ(lm.num_nodes(), brute.size());
  for (NodeId i = 0; i < brute.size(); ++i) {
    const std::span<const NodeId> row = lm.Reachable(i);
    ASSERT_EQ(row.size(), brute[i].size())
        << context << " trial " << trial << " row " << i;
    for (size_t k = 0; k < row.size(); ++k) {
      ASSERT_EQ(row[k], brute[i][k])
          << context << " trial " << trial << " row " << i << " elem " << k;
    }
  }
}

TEST(LinkModelPropertyTest, GridAdjacencyMatchesBruteForce) {
  Rng rng(20260808);
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 48));
    // Mix of deployment scales so cells are sometimes coarse (one cell
    // swallows the area, the historical all-pairs regime) and sometimes
    // fine (many nodes per query neighborhood).
    const double extent = rng.UniformDouble(0.1, 4.0);
    const bool uniform_range = rng.Bernoulli(0.5);
    const double base_range = rng.UniformDouble(0.01, 1.5 * extent);
    std::vector<Point> positions;
    std::vector<double> ranges;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({rng.UniformDouble(-extent, extent),
                           rng.UniformDouble(-extent, extent)});
      ranges.push_back(uniform_range ? base_range
                                     : rng.UniformDouble(0.0, base_range));
    }

    LinkModel lm(positions, ranges, 0.0);
    std::vector<std::vector<NodeId>> brute =
        BruteAdjacency(positions, ranges);
    ExpectRowsEqual(lm, brute, "build", trial);
    ASSERT_EQ(lm.IsConnected(), BruteConnected(brute)) << "trial " << trial;

    // SetPosition churn: every move must leave the model identical to a
    // brute-force rebuild at the new placement.
    const int moves = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < moves; ++m) {
      const NodeId id =
          static_cast<NodeId>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      // Occasionally teleport far outside the deployment (cell migration
      // across many cells), otherwise drift locally.
      const Point target =
          rng.Bernoulli(0.2)
              ? Point{rng.UniformDouble(-10 * extent, 10 * extent),
                      rng.UniformDouble(-10 * extent, 10 * extent)}
              : Point{positions[id].x + rng.Gaussian(0.0, 0.3 * extent),
                      positions[id].y + rng.Gaussian(0.0, 0.3 * extent)};
      lm.SetPosition(id, target);
      positions[id] = target;
      brute = BruteAdjacency(positions, ranges);
      ExpectRowsEqual(lm, brute, "move", trial);
    }
    ASSERT_EQ(lm.IsConnected(), BruteConnected(brute)) << "trial " << trial;
  }
}

TEST(LinkModelPropertyTest, OverlayCompactionKeepsRowsIdentical) {
  // Enough churn to cross the compaction threshold (max(64, n/4) overlay
  // rows): the fold back into the flat CSR array must not change any row.
  Rng rng(99);
  const size_t n = 400;
  std::vector<Point> positions;
  std::vector<double> ranges;
  for (size_t i = 0; i < n; ++i) {
    positions.push_back({rng.NextDouble(), rng.NextDouble()});
    ranges.push_back(0.12);
  }
  LinkModel lm(positions, ranges, 0.0);
  bool compacted = false;
  for (int m = 0; m < 300; ++m) {
    const NodeId id =
        static_cast<NodeId>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const Point target{rng.NextDouble(), rng.NextDouble()};
    const size_t overlay_before = lm.overlay_rows();
    lm.SetPosition(id, target);
    positions[id] = target;
    if (lm.overlay_rows() < overlay_before) compacted = true;
  }
  EXPECT_TRUE(compacted) << "churn never crossed the compaction threshold";
  ExpectRowsEqual(lm, BruteAdjacency(positions, ranges), "compaction", 0);
}

}  // namespace
}  // namespace snapq
