# Empty dependencies file for election_walkthrough.
# This may be replaced when dependencies are built.
