#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace snapq {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == ',') {
      tok.type = TokenType::kComma;
      tok.text = ",";
      ++i;
    } else if (c == '(') {
      tok.type = TokenType::kLeftParen;
      tok.text = "(";
      ++i;
    } else if (c == ')') {
      tok.type = TokenType::kRightParen;
      tok.text = ")";
      ++i;
    } else if (c == '*') {
      tok.type = TokenType::kStar;
      tok.text = "*";
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               ((c == '.' || c == '-' || c == '+') && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0)) {
      // Number: [+-]? digits [. digits]? [eE exponent]?
      size_t j = i;
      if (input[j] == '+' || input[j] == '-') ++j;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) !=
                           0 ||
                       input[j] == '.')) {
        ++j;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k])) != 0) {
          while (k < n &&
                 std::isdigit(static_cast<unsigned char>(input[k])) != 0) {
            ++k;
          }
          j = k;
        }
      }
      tok.type = TokenType::kNumber;
      tok.text = std::string(input.substr(i, j - i));
      Result<double> value = ParseDouble(tok.text);
      if (!value.ok()) {
        return Status::ParseError(
            StrFormat("bad number '%s' at offset %zu", tok.text.c_str(), i));
      }
      tok.number = *value;
      i = j;
      // A duration suffix glued to the number (1s, 5min) becomes a separate
      // identifier token.
    } else if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(input.substr(i, j - i));
      i = j;
    } else {
      return Status::ParseError(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace snapq
