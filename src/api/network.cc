#include "api/network.h"

#include <utility>

#include "common/check.h"
#include "net/topology.h"
#include "snapshot/health_probe.h"

namespace snapq {

SensorNetwork::SensorNetwork(const NetworkConfig& config) : config_(config) {
  SNAPQ_CHECK_GT(config.num_nodes, 0u);
  SNAPQ_CHECK_GT(config.transmission_range, 0.0);

  Rng root(config.seed);
  std::vector<Point> positions = config.positions;
  if (positions.empty()) {
    Rng placement = root.SplitNamed("placement");
    positions = PlaceUniform(config.num_nodes, config.area, placement);
  }
  SNAPQ_CHECK_EQ(positions.size(), config.num_nodes);

  SimConfig sim_config;
  sim_config.loss_probability = config.loss_probability;
  sim_config.snoop_probability = config.snoop_probability;
  sim_config.energy = config.energy;
  sim_config.seed = root.SplitNamed("simulator").NextUint64();

  std::vector<double> ranges(config.num_nodes, config.transmission_range);
  sim_ = std::make_unique<Simulator>(std::move(positions), std::move(ranges),
                                     sim_config);

  Rng agent_seeds = root.SplitNamed("agents");
  agents_.reserve(config.num_nodes);
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    agents_.push_back(std::make_unique<SnapshotAgent>(
        i, sim_.get(), config.snapshot, agent_seeds.NextUint64()));
    agents_.back()->Install();
  }

  executor_ = std::make_unique<QueryExecutor>(
      sim_.get(), &agents_, Catalog::WithStandardRegions(config.area));
  continuous_ =
      std::make_unique<ContinuousQueryRunner>(sim_.get(), executor_.get());
}

Status SensorNetwork::AttachDataset(Dataset data) {
  if (data.num_nodes() != agents_.size()) {
    return Status::InvalidArgument(
        "dataset node count does not match the network");
  }
  dataset_ = std::move(data);
  const Dataset& ds = *dataset_;
  // Data events for tick t are scheduled now, ahead of any protocol event
  // later scheduled for t, so the FIFO tie-break delivers fresh readings
  // before the protocol acts on them.
  for (Time t = sim_->now(); t < static_cast<Time>(ds.horizon()); ++t) {
    sim_->ScheduleAt(t, [this, t] {
      for (NodeId i = 0; i < agents_.size(); ++i) {
        agents_[i]->SetMeasurement(
            dataset_->Value(i, static_cast<size_t>(t)));
      }
    });
  }
  return Status::Ok();
}

void SensorNetwork::SetMeasurements(const std::vector<double>& values) {
  SNAPQ_CHECK_EQ(values.size(), agents_.size());
  for (NodeId i = 0; i < agents_.size(); ++i) {
    agents_[i]->SetMeasurement(values[i]);
  }
}

void SensorNetwork::ScheduleTrainingBroadcasts(Time from, Time to) {
  for (Time t = from; t < to; ++t) {
    sim_->ScheduleAt(t, [this] {
      for (auto& agent : agents_) {
        if (sim_->alive(agent->id())) agent->BroadcastValue();
      }
    });
  }
}

ElectionStats SensorNetwork::RunElection(Time t0) {
  return RunGlobalElection(*sim_, agents_, t0, config_.snapshot);
}

void SensorNetwork::ScheduleMaintenance(
    Time first, Time horizon, Time interval,
    MaintenanceDriver::RoundCallback callback) {
  maintenance_ =
      std::make_unique<MaintenanceDriver>(sim_.get(), &agents_, interval);
  maintenance_->ScheduleRounds(first, horizon, std::move(callback));
}

obs::Tracer& SensorNetwork::EnableTracing(const obs::TracerConfig& config) {
  tracer_ = std::make_unique<obs::Tracer>(config);
  sim_->SetTracer(tracer_.get());
  return *tracer_;
}

obs::SnapshotHealthMonitor& SensorNetwork::EnsureHealthMonitor() {
  if (monitor_ == nullptr) {
    monitor_ = std::make_unique<obs::SnapshotHealthMonitor>(&sim_->registry(),
                                                            &sim_->journal());
  }
  return *monitor_;
}

obs::HealthSample SensorNetwork::SampleHealth() {
  obs::SnapshotHealthMonitor& monitor = EnsureHealthMonitor();
  const obs::HealthSample sample = ProbeSnapshotHealth(*sim_, agents_);
  monitor.Observe(sample, sim_->now());
  return sample;
}

void SensorNetwork::ScheduleHealthSampling(Time first, Time horizon,
                                           Time interval) {
  SNAPQ_CHECK_GT(interval, 0);
  for (Time t = first; t < horizon; t += interval) {
    sim_->ScheduleAt(t, [this] { SampleHealth(); });
  }
}

obs::TelemetryRecorder& SensorNetwork::EnableTelemetry(
    const obs::TelemetryConfig& config) {
  EnsureHealthMonitor();  // registers the health gauges the probes read
  telemetry_ =
      std::make_unique<obs::TelemetryRecorder>(config, &sim_->registry());

  // Default series: snapshot health, message-layer rates, process RSS.
  telemetry_->TrackGauge("health.coverage");
  telemetry_->TrackGauge("health.violation_rate");
  telemetry_->TrackGauge("health.reelection_rate");
  telemetry_->TrackGauge("health.spurious_reps");
  telemetry_->TrackGauge("health.model_staleness");
  telemetry_->TrackCounterRate("net.sent");
  telemetry_->TrackCounterRate("net.delivered");
  telemetry_->TrackCounterRate("net.lost");
  telemetry_->TrackRss();

  // Splice the flight recorder in front of whatever sink the journal has
  // (including none — the ring then becomes the journal's only consumer,
  // which is exactly what the blackbox needs).
  if (flight_recorder_ == nullptr) {
    auto recorder =
        std::make_unique<obs::FlightRecorder>(config.flight_recorder_capacity);
    obs::FlightRecorder* raw = recorder.get();
    raw->SetForward(sim_->journal().ReplaceSink(std::move(recorder)));
    flight_recorder_ = raw;
  }

  if (auditor_ != nullptr) TrackAccuracySeries();
  if (energy_ledger_ != nullptr) TrackEnergySeries();
  if (topo_monitor_ != nullptr) TrackTopoSeries();

  watchdog_ = std::make_unique<obs::SloWatchdog>(telemetry_.get(),
                                                 &sim_->journal());
  watchdog_->SetBreachCallback([this](const obs::SloBreach& breach) {
    const obs::TelemetryConfig& cfg = telemetry_->config();
    if (cfg.blackbox_path.empty()) return;
    obs::BlackboxContext ctx;
    ctx.reason = "slo_breach: " + breach.rule.ToString();
    ctx.benchmark = cfg.blackbox_label;
    ctx.now = sim_->now();
    ctx.recorder = telemetry_.get();
    ctx.watchdog = watchdog_.get();
    ctx.tracer = tracer_.get();
    obs::WriteBlackbox(flight_recorder_, ctx, cfg.blackbox_path);
  });
  return *telemetry_;
}

obs::EnergyLedger& SensorNetwork::EnableEnergyLedger() {
  energy_ledger_ = std::make_unique<obs::EnergyLedger>(
      config_.energy, agents_.size(), &sim_->registry());
  sim_->SetEnergyLedger(energy_ledger_.get());
  if (telemetry_ != nullptr) TrackEnergySeries();
  return *energy_ledger_;
}

void SensorNetwork::TrackEnergySeries() {
  telemetry_->TrackGauge("energy.drained");
  telemetry_->TrackGauge("energy.burn_rate");
  telemetry_->TrackCounterRate("net.node_deaths");
  // Remaining-charge and forecast gauges only exist for finite batteries
  // (an unlimited model's would be infinite, and TrackGauge would create
  // them in the registry just to serialize null into sidecars).
  if (!energy_ledger_->unlimited()) {
    telemetry_->TrackGauge("energy.remaining_total");
    telemetry_->TrackGauge("energy.remaining_min");
    telemetry_->TrackGauge("energy.first_death_tick");
    telemetry_->TrackGauge("energy.coverage_knee_tick");
  }
}

obs::AccuracyAuditor& SensorNetwork::EnableAccuracyAudit(
    const obs::AccuracyAuditConfig& config) {
  auditor_ = std::make_unique<obs::AccuracyAuditor>(
      config, agents_.size(), &sim_->registry(), &sim_->journal());
  if (telemetry_ != nullptr) TrackAccuracySeries();
  return *auditor_;
}

void SensorNetwork::TrackAccuracySeries() {
  telemetry_->TrackGauge("accuracy.violation_rate");
  telemetry_->TrackGauge("accuracy.budget_burn");
  telemetry_->TrackGauge("accuracy.max_abs_error");
  telemetry_->TrackCounterRate("accuracy.violations");
}

obs::TopologyMonitor& SensorNetwork::EnableTopologyMonitor(
    const obs::TopologyConfig& config) {
  topo_monitor_ = std::make_unique<obs::TopologyMonitor>(
      config, agents_.size(), &sim_->registry(), &sim_->journal());
  sim_->SetLinkObserver(&topo_monitor_->link_observer());
  if (telemetry_ != nullptr) TrackTopoSeries();
  return *topo_monitor_;
}

void SensorNetwork::TrackTopoSeries() {
  telemetry_->TrackGauge("topo.partitions");
  telemetry_->TrackGauge("topo.bridges");
  telemetry_->TrackGauge("topo.articulation_nodes");
  telemetry_->TrackGauge("topo.avg_degree");
  telemetry_->TrackGauge("topo.isolated_nodes");
  telemetry_->TrackGauge("topo.weak_links");
  telemetry_->TrackGauge("churn.flap_rate");
  telemetry_->TrackGauge("churn.election_rate");
  telemetry_->TrackGauge("churn.rep_tenure_p50");
}

const obs::TopologySnapshot& SensorNetwork::SampleTopologyNow() {
  SNAPQ_CHECK(topo_monitor_ != nullptr);
  // Refresh the plain-data cluster view from the protocol agents (the
  // health_probe pattern — obs never sees the snapshot layer).
  obs::ClusterView& view = topo_monitor_->mutable_view();
  for (NodeId i = 0; i < agents_.size(); ++i) {
    const bool alive = sim_->alive(i);
    view.alive[i] = alive ? 1 : 0;
    view.is_rep[i] =
        alive && agents_[i]->mode() == NodeMode::kActive ? 1 : 0;
    view.representative[i] = agents_[i]->representative();
  }
  return topo_monitor_->Sample(sim_->links(), sim_->now());
}

void SensorNetwork::AuditSnapshotNow() {
  if (auditor_ == nullptr) return;
  // Sweep audit: judge every representation a live representative would
  // answer with right now against the deployment's configured T — the
  // sampled-tick complement of the per-query hook.
  const SnapshotConfig& snap_config = config_.snapshot;
  auditor_->BeginRound(obs::AuditSource::kSweep, /*origin=*/-1,
                       snap_config.threshold, sim_->now());
  for (const auto& agent : agents_) {
    if (!sim_->alive(agent->id())) continue;  // dead reps cannot answer
    for (const auto& [j, e] : agent->represents()) {
      const std::optional<double> estimate = agent->EstimateFor(j);
      if (!estimate.has_value()) continue;
      const double truth = agents_[j]->measurement();
      auditor_->ObserveEstimate(j, agent->id(), *estimate - truth,
                                snap_config.metric.Distance(truth, *estimate));
    }
  }
  auditor_->EndRound();
}

bool SensorNetwork::AddSloRule(std::string_view text) {
  if (watchdog_ == nullptr) return false;
  return watchdog_->AddRule(text);
}

void SensorNetwork::SampleTelemetry() {
  SNAPQ_CHECK(telemetry_ != nullptr);
  SampleHealth();
  AuditSnapshotNow();  // no-op unless EnableAccuracyAudit ran
  if (topo_monitor_ != nullptr) SampleTopologyNow();
  if (energy_ledger_ != nullptr) energy_ledger_->UpdateGauges(sim_->now());
  telemetry_->SampleNow(sim_->now());
  watchdog_->Evaluate(sim_->now());
}

void SensorNetwork::ScheduleTelemetrySampling(Time first, Time horizon,
                                              Time interval) {
  SNAPQ_CHECK(telemetry_ != nullptr);
  if (interval == 0) interval = telemetry_->config().sample_interval;
  SNAPQ_CHECK_GT(interval, 0);
  for (Time t = first; t < horizon; t += interval) {
    sim_->ScheduleAt(t, [this] { SampleTelemetry(); });
  }
}

ExecutionOptions SensorNetwork::WithAudit(
    const ExecutionOptions& options) const {
  ExecutionOptions audited = options;
  if (audited.audit == nullptr) audited.audit = auditor_.get();
  return audited;
}

Result<QueryResult> SensorNetwork::Query(const std::string& sql,
                                         const ExecutionOptions& options) {
  if (auditor_ != nullptr) return executor_->ExecuteSql(sql, WithAudit(options));
  return executor_->ExecuteSql(sql, options);
}

Result<ExplainReport> SensorNetwork::Explain(const std::string& sql,
                                             const ExecutionOptions& options) {
  if (auditor_ != nullptr) return ExplainSql(*executor_, sql, WithAudit(options));
  return ExplainSql(*executor_, sql, options);
}

Result<int64_t> SensorNetwork::RunContinuousQuery(
    const std::string& sql, Time start,
    ContinuousQueryRunner::EpochCallback callback,
    const ExecutionOptions& options) {
  if (auditor_ != nullptr) {
    return continuous_->ScheduleSql(sql, start, WithAudit(options),
                                    std::move(callback));
  }
  return continuous_->ScheduleSql(sql, start, options, std::move(callback));
}

}  // namespace snapq
