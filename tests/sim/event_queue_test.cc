#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace snapq {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(5); });
  q.ScheduleAt(1, [&] { order.push_back(1); });
  q.ScheduleAt(3, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5);
}

TEST(EventQueueTest, FifoWithinSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(2, [&, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1, [&] {
    order.push_back(1);
    q.ScheduleAt(1, [&] { order.push_back(2); });  // same time, later seq
    q.ScheduleAt(4, [&] { order.push_back(4); });
  });
  q.ScheduleAt(3, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1, [&] { order.push_back(1); });
  q.ScheduleAt(2, [&] { order.push_back(2); });
  q.ScheduleAt(3, [&] { order.push_back(3); });
  q.RunUntil(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 2);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(42);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueueTest, RunNextReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, PendingCount) {
  EventQueue q;
  q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.RunNext();
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(5, [] {});
  q.RunAll();
  EXPECT_DEATH(q.ScheduleAt(4, [] {}), "SNAPQ_CHECK");
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 7919) % 97;  // scattered times
    q.ScheduleAt(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  q.RunAll();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace snapq
