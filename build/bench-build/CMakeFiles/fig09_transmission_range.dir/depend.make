# Empty dependencies file for fig09_transmission_range.
# This may be replaced when dependencies are built.
