#include "obs/span.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace snapq::obs {
namespace {

TEST(ObsSpanTest, RecordsWallTimeOnDestruction) {
  MetricRegistry reg;
  { Span span(&reg, "phase"); }
  const MetricRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.at("phase.wall_us.count"), 1.0);
  // No sim marks -> no sim-ticks histogram.
  EXPECT_EQ(snap.count("phase.sim_ticks.count"), 0u);
}

TEST(ObsSpanTest, RecordsSimTicksWhenBothMarksSet) {
  MetricRegistry reg;
  {
    Span span(&reg, "election");
    span.BeginSim(100);
    span.EndSim(142);
  }
  const MetricRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.at("election.sim_ticks.count"), 1.0);
  EXPECT_EQ(snap.at("election.sim_ticks.sum"), 42.0);
}

TEST(ObsSpanTest, ExplicitEndIsIdempotent) {
  MetricRegistry reg;
  Span span(&reg, "p");
  span.BeginSim(0);
  span.EndSim(7);
  span.End();
  span.End();  // second call (and the destructor) must not double-record
  EXPECT_EQ(reg.GetHistogram("p.sim_ticks", Span::SimTicksBounds())->count(),
            1u);
  EXPECT_EQ(
      reg.GetHistogram("p.wall_us", Span::WallMicrosBounds())->count(), 1u);
}

TEST(ObsSpanTest, NullRegistryIsInert) {
  Span span(nullptr, "nothing");
  span.BeginSim(1);
  span.EndSim(2);
  span.End();  // must not crash
}

TEST(ObsSpanTest, MatchesSimulatorClockAcrossAPhase) {
  // Drive a real simulator and check the span's sim-ticks equals the
  // event-queue time that actually elapsed.
  Simulator sim({{0.0, 0.0}, {1.0, 0.0}}, {1.5, 1.5}, SimConfig{});
  {
    Span span(&sim.registry(), "drain");
    span.BeginSim(sim.now());
    sim.ScheduleAt(25, [] {});
    sim.RunUntil(30);
    span.EndSim(sim.now());
  }
  Histogram* h =
      sim.registry().GetHistogram("drain.sim_ticks", Span::SimTicksBounds());
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 30.0);
}

}  // namespace
}  // namespace snapq::obs
