// RAII phase timers. A Span measures one protocol phase (an election
// round, a maintenance epoch, a query execution, a model refit) and
// records its duration into registry histograms on destruction:
//
//   {
//     obs::Span span(&sim.registry(), "election");
//     span.BeginSim(sim.now());
//     ... run the phase ...
//     span.EndSim(sim.now());
//   }  // records "<name>.wall_us" and "<name>.sim_ticks"
//
// Wall time is always recorded (steady_clock); sim-time is recorded only
// when both BeginSim and EndSim were called (simulated phases advance the
// event queue, wall-only phases like query planning do not). A Span built
// on a null registry is inert — safe for code paths where observability
// is not wired up.
#ifndef SNAPQ_OBS_SPAN_H_
#define SNAPQ_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "net/trace_context.h"
#include "obs/metric_registry.h"

namespace snapq::obs {

class Tracer;

class Span {
 public:
  /// Starts the wall clock immediately. `registry` may be null (no-op).
  Span(MetricRegistry* registry, std::string name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Marks the simulated start/end time of the phase. Either call may be
  /// omitted; the sim-ticks histogram is only recorded when both were set.
  void BeginSim(int64_t sim_now);
  void EndSim(int64_t sim_now);

  /// Also records this phase into `tracer` as a kPhase trace span under
  /// `ctx` when the span ends (needs both BeginSim and EndSim marks).
  /// Null tracer or unsampled ctx: no-op.
  void AttachTrace(Tracer* tracer, const TraceContext& ctx);

  /// Records the histograms early; the destructor then does nothing.
  void End();

  ~Span() { End(); }

  /// Default bucket bounds (exposed so tests and dashboards agree).
  static const std::vector<double>& WallMicrosBounds();
  static const std::vector<double>& SimTicksBounds();

 private:
  MetricRegistry* registry_;
  Tracer* tracer_ = nullptr;
  TraceContext trace_ctx_{};
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  int64_t sim_start_ = 0;
  int64_t sim_end_ = 0;
  bool sim_start_set_ = false;
  bool sim_end_set_ = false;
  bool ended_ = false;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_SPAN_H_
