#include "snapshot/election.h"

#include <algorithm>

#include "common/check.h"

namespace snapq {

SnapshotView CaptureSnapshot(
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents) {
  std::vector<SnapshotView::NodeInfo> infos;
  infos.reserve(agents.size());
  for (const auto& agent : agents) {
    infos.push_back(agent->Info());
  }
  return SnapshotView(std::move(infos));
}

ElectionStats SummarizeSnapshot(
    Simulator& sim,
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents) {
  const SnapshotView view = CaptureSnapshot(agents);
  ElectionStats stats;
  stats.num_active = view.CountActive();
  stats.num_passive = view.CountPassive();
  stats.num_undefined = view.CountUndefined();
  stats.num_spurious = view.CountSpurious();

  size_t live = 0;
  uint64_t total_msgs = 0;
  uint64_t max_msgs = 0;
  for (const auto& agent : agents) {
    if (!sim.alive(agent->id())) continue;
    ++live;
    const uint64_t sent = sim.messages_sent_by(agent->id());
    total_msgs += sent;
    max_msgs = std::max(max_msgs, sent);
  }
  if (live > 0) {
    stats.avg_messages_per_node =
        static_cast<double>(total_msgs) / static_cast<double>(live);
  }
  stats.max_messages_per_node = static_cast<double>(max_msgs);
  return stats;
}

ElectionStats RunGlobalElection(
    Simulator& sim,
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents, Time t0,
    const SnapshotConfig& config) {
  SNAPQ_CHECK_GE(t0, sim.now());
  sim.ScheduleAt(t0, [&sim] { sim.ResetPerNodeCounters(); });
  for (const auto& agent : agents) {
    agent->BeginElection(t0);
  }
  // Refinement ends by the Rule-4 hard cap; two extra units cover in-flight
  // acknowledgments scheduled on the final tick.
  const Time bound = t0 + 3 + config.max_wait + config.rule4_hard_cap + 2;
  sim.RunUntil(bound);
  return SummarizeSnapshot(sim, agents);
}

}  // namespace snapq
