// Figure 9: number of representatives vs transmission range, for several
// K. Ranges below 0.2 often disconnect a 100-node network (§6.1), so the
// sweep starts there.
//
// Paper shape: representatives fall as range grows and flatten past ~0.7
// (sqrt(0.5): a centrally-placed node hears the whole unit square).
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "net/topology.h"
#include "obs/topo.h"

SNAPQ_BENCHMARK(fig09_transmission_range,
                "Figure 9: representatives vs transmission range") {
  using namespace snapq;
  bench::Driver driver(ctx, "Figure 9: representatives vs transmission range",
                       "N=100, P_loss=0, cache=2048B, T=1, sse; one line "
                       "per K");

  const std::vector<size_t> ks = {1, 5, 10, 20};
  std::vector<std::string> header = {"range"};
  for (size_t k : ks) header.push_back("K=" + std::to_string(k));
  TablePrinter table(std::move(header));

  const std::vector<double> ranges = {0.2, 0.3, 0.4, 0.5, 0.6,
                                      0.7, 0.8, 1.0, 1.2, 1.4};
  for (double range : ranges) {
    std::vector<std::string> row = {TablePrinter::Num(range, 1)};
    for (size_t k : ks) {
      const RunningStats reps = MeanOverSeeds(
          static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
          [&](uint64_t seed) {
            SensitivityConfig config;
            config.num_classes = k;
            config.transmission_range = range;
            config.seed = seed;
            return static_cast<double>(
                RunSensitivityTrial(config).stats.num_active);
          },
          ctx.jobs);
      row.push_back(TablePrinter::Num(reps.mean(), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Structural companion to the sweep: connectivity of the canonical
  // seed-1 deployment at each range (the figure's caveat that ranges
  // below 0.2 often disconnect a 100-node network, made measurable).
  // Computed serially outside the ParallelMap above, so the `.topo.json`
  // sidecar is bit-identical across --jobs settings.
  Rng placement = Rng(bench::kBaseSeed).SplitNamed("placement");
  const std::vector<Point> positions =
      PlaceUniform(100, Rect::UnitSquare(), placement);
  constexpr double kSidecarRange = 0.7;  // the paper's flattening point
  obs::TopologySnapshot sidecar_snap;
  std::vector<std::pair<std::string, double>> extras;
  std::printf("\ncanonical deployment (seed %llu) connectivity:\n",
              static_cast<unsigned long long>(bench::kBaseSeed));
  TablePrinter conn({"range", "partitions", "bridges", "articulation",
                     "isolated", "avg_degree"});
  for (double range : ranges) {
    const LinkModel links(positions, std::vector<double>(100, range), 0.0);
    const obs::TopologySnapshot snap =
        obs::AnalyzeTopology(links, obs::ClusterView{}, 0);
    conn.AddRow({TablePrinter::Num(range, 1), std::to_string(snap.partitions),
                 std::to_string(snap.bridges.size()),
                 std::to_string(snap.articulation.size()),
                 std::to_string(snap.isolated),
                 TablePrinter::Num(snap.avg_degree, 1)});
    extras.emplace_back("partitions_r" + TablePrinter::Num(range, 1),
                        static_cast<double>(snap.partitions));
    if (range == kSidecarRange) sidecar_snap = snap;
  }
  conn.Print(std::cout);
  extras.emplace_back("sidecar_range", kSidecarRange);
  driver.WriteTopoMap(sidecar_snap, positions, {}, 0, std::move(extras));
}
