file(REMOVE_RECURSE
  "libsnapq_data.a"
)
