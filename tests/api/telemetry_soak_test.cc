// End-to-end telemetry: the SensorNetwork wiring of recorder + watchdog +
// flight recorder. A healthy run must stay breach-free; an injected
// coverage collapse (total message loss while every node re-elects) must
// confirm a watchdog breach and dump a blackbox whose journal window
// contains the events around the incident.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/network.h"
#include "common/rng.h"
#include "data/random_walk.h"
#include "obs/json.h"

namespace snapq {
namespace {

Result<Dataset> MakeData(size_t num_nodes, size_t horizon) {
  Rng rng(3);
  RandomWalkConfig walk;
  walk.num_nodes = num_nodes;
  walk.num_classes = 5;
  walk.horizon = horizon;
  return Dataset::Create(GenerateRandomWalk(walk, rng).series);
}

TEST(TelemetrySoakTest, HealthyRunStaysBreachFree) {
  NetworkConfig config;
  config.num_nodes = 30;
  config.snapshot.threshold = 1.0;
  config.seed = 11;
  SensorNetwork net(config);

  Result<Dataset> data = MakeData(30, 400);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(net.AttachDataset(std::move(*data)).ok());

  obs::TelemetryConfig telemetry_config;
  telemetry_config.sample_interval = 10;
  net.EnableTelemetry(telemetry_config);
  ASSERT_TRUE(net.AddSloRule("health.coverage value >= 0.5 for 50"));
  ASSERT_TRUE(net.AddSloRule("proc.rss_kb slope <= 64"));

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(20);
  net.RunElection(20);
  net.ScheduleTelemetrySampling(net.now() + 10, 400);
  net.ScheduleMaintenance(net.now() + 100, 400, 100);
  net.RunAll();

  ASSERT_NE(net.watchdog(), nullptr);
  EXPECT_TRUE(net.watchdog()->healthy()) << net.watchdog()->ToString();
  EXPECT_GT(net.telemetry()->num_samples(), 20u);
  // The default series are all live.
  EXPECT_NE(net.telemetry()->series("health.coverage"), nullptr);
  EXPECT_NE(net.telemetry()->series("net.sent.rate"), nullptr);
  EXPECT_GT(net.telemetry()->series("proc.rss_kb")->last(), 0.0);
  // The flight recorder tees the journal (health.sample events at least).
  EXPECT_GT(net.flight_recorder()->total_written(), 0u);
}

TEST(TelemetrySoakTest, CoverageCollapseTriggersBreachAndBlackbox) {
  NetworkConfig config;
  config.num_nodes = 30;
  config.snapshot.threshold = 1.0;
  config.seed = 11;
  SensorNetwork net(config);

  Result<Dataset> data = MakeData(30, 600);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(net.AttachDataset(std::move(*data)).ok());

  const std::string blackbox =
      ::testing::TempDir() + "telemetry_soak.blackbox.json";
  std::remove(blackbox.c_str());
  obs::TelemetryConfig telemetry_config;
  telemetry_config.sample_interval = 10;
  telemetry_config.blackbox_path = blackbox;
  telemetry_config.blackbox_label = "telemetry_soak_test";
  net.EnableTelemetry(telemetry_config);
  ASSERT_TRUE(net.AddSloRule("health.coverage ewma >= 0.9 for 100"));

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(20);
  net.RunElection(20);
  net.ScheduleTelemetrySampling(100, 600);
  net.RunUntil(300);
  ASSERT_TRUE(net.watchdog()->healthy()) << net.watchdog()->ToString();

  // Collapse: from t=300 every message is lost and every settled node is
  // yanked straight back into a re-election it can only resolve by Rule-4
  // style self-promotion — then it is yanked again. The network churns
  // between kUndefined and momentary self-representation, so the coverage
  // EWMA drops well below 0.9 and stays there past the 100-tick window.
  net.sim().ScheduleAt(300, [&net] { net.sim().SetLossProbability(1.0); });
  for (Time t = 300; t < 600; ++t) {
    net.sim().ScheduleAt(t, [&net] {
      for (auto& agent : net.agents()) agent->BeginLocalReelection();
    });
  }
  net.RunAll();

  ASSERT_FALSE(net.watchdog()->healthy());
  const obs::SloBreach& breach = net.watchdog()->breaches()[0];
  EXPECT_EQ(breach.rule.metric, "health.coverage");
  EXPECT_GE(breach.violated_since, 300);
  EXPECT_GE(breach.confirmed_at, breach.violated_since + 100);
  EXPECT_LT(breach.observed, 0.9);

  // The breach dumped a well-formed blackbox carrying the incident window.
  std::ifstream in(blackbox);
  ASSERT_TRUE(in.good()) << "no blackbox at " << blackbox;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  std::remove(blackbox.c_str());

  EXPECT_TRUE(obs::ValidateJson(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"kind\": \"snapq-blackbox\""), std::string::npos);
  EXPECT_NE(doc.find("\"benchmark\": \"telemetry_soak_test\""),
            std::string::npos);
  EXPECT_NE(doc.find("health.coverage ewma >= 0.9 for 100"),
            std::string::npos);
  // The journal ring captured the window around the incident: the breach
  // event itself and the health samples leading up to it.
  EXPECT_NE(doc.find("\"event\":\"slo.breach\""), std::string::npos);
  EXPECT_NE(doc.find("\"event\":\"health.sample\""), std::string::npos);
}

TEST(TelemetrySoakTest, SloRuleApiRejectsWithoutTelemetry) {
  NetworkConfig config;
  config.num_nodes = 5;
  config.seed = 1;
  SensorNetwork net(config);
  EXPECT_FALSE(net.AddSloRule("health.coverage value >= 0.9"));
  net.EnableTelemetry();
  EXPECT_TRUE(net.AddSloRule("health.coverage value >= 0.9"));
  EXPECT_FALSE(net.AddSloRule("health.coverage wibble >= 0.9"));
}

}  // namespace
}  // namespace snapq
