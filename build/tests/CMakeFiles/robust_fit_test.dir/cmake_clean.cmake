file(REMOVE_RECURSE
  "CMakeFiles/robust_fit_test.dir/model/robust_fit_test.cc.o"
  "CMakeFiles/robust_fit_test.dir/model/robust_fit_test.cc.o.d"
  "robust_fit_test"
  "robust_fit_test.pdb"
  "robust_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
