#include "obs/metric_registry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/json.h"

namespace snapq::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  SNAPQ_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  if (count_ == 1 || x > max_) max_ = x;
}

void Histogram::MergeFrom(const Histogram& other) {
  SNAPQ_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

std::string LabeledName(const std::string& name, NodeId node) {
  return StrFormat("%s{node=%u}", name.c_str(), node);
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Counter* MetricRegistry::GetCounter(const std::string& name, NodeId node) {
  return &node_counters_[name][node];
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return &gauges_[name];
}

Gauge* MetricRegistry::GetGauge(const std::string& name, NodeId node) {
  return &node_gauges_[name][node];
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  return &histograms_.try_emplace(name, Histogram(std::move(bounds)))
              .first->second;
}

MetricRegistry::Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap[name] = static_cast<double>(c.value());
  }
  for (const auto& [name, per_node] : node_counters_) {
    for (const auto& [node, c] : per_node) {
      snap[LabeledName(name, node)] = static_cast<double>(c.value());
    }
  }
  for (const auto& [name, g] : gauges_) {
    snap[name] = g.value();
  }
  for (const auto& [name, per_node] : node_gauges_) {
    for (const auto& [node, g] : per_node) {
      snap[LabeledName(name, node)] = g.value();
    }
  }
  for (const auto& [name, h] : histograms_) {
    snap[name + ".count"] = static_cast<double>(h.count());
    snap[name + ".sum"] = h.sum();
  }
  return snap;
}

MetricRegistry::Snapshot MetricRegistry::DeltaSince(
    const Snapshot& earlier) const {
  Snapshot delta = TakeSnapshot();
  for (auto& [name, value] : delta) {
    const auto it = earlier.find(name);
    if (it != earlier.end()) value -= it->second;
  }
  return delta;
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].Inc(c.value());
  }
  for (const auto& [name, per_node] : other.node_counters_) {
    auto& mine = node_counters_[name];
    for (const auto& [node, c] : per_node) {
      mine[node].Inc(c.value());
    }
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].SetMax(g.value());
  }
  for (const auto& [name, per_node] : other.node_gauges_) {
    auto& mine = node_gauges_[name];
    for (const auto& [node, g] : per_node) {
      mine[node].SetMax(g.value());
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      Histogram copy(h.bounds());
      copy.MergeFrom(h);
      histograms_.try_emplace(name, std::move(copy));
    } else {
      it->second.MergeFrom(h);
    }
  }
}

void MetricRegistry::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, per_node] : node_counters_) {
    for (auto& [node, c] : per_node) c.Reset();
  }
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, per_node] : node_gauges_) {
    for (auto& [node, g] : per_node) g.Reset();
  }
  for (auto& [name, h] : histograms_) h.Reset();
}

size_t MetricRegistry::num_instruments() const {
  size_t n = counters_.size() + gauges_.size() + histograms_.size();
  for (const auto& [name, per_node] : node_counters_) n += per_node.size();
  for (const auto& [name, per_node] : node_gauges_) n += per_node.size();
  return n;
}

namespace {

void AppendEntry(std::string* out, bool* first, const std::string& key,
                 const std::string& value) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += JsonEscape(key);
  *out += "\":";
  *out += value;
}

}  // namespace

std::string MetricRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    AppendEntry(&out, &first, name,
                JsonNumber(static_cast<double>(c.value())));
  }
  for (const auto& [name, per_node] : node_counters_) {
    for (const auto& [node, c] : per_node) {
      AppendEntry(&out, &first, LabeledName(name, node),
                  JsonNumber(static_cast<double>(c.value())));
    }
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    AppendEntry(&out, &first, name, JsonNumber(g.value()));
  }
  for (const auto& [name, per_node] : node_gauges_) {
    for (const auto& [node, g] : per_node) {
      AppendEntry(&out, &first, LabeledName(name, node),
                  JsonNumber(g.value()));
    }
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::string body = "{\"count\":";
    body += JsonNumber(static_cast<double>(h.count()));
    body += ",\"sum\":";
    body += JsonNumber(h.sum());
    body += ",\"max\":";
    body += JsonNumber(h.max_seen());
    body += ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) body += ',';
      body += JsonNumber(h.bounds()[i]);
    }
    body += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets().size(); ++i) {
      if (i > 0) body += ',';
      body += JsonNumber(static_cast<double>(h.buckets()[i]));
    }
    body += "]}";
    AppendEntry(&out, &first, name, body);
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::ToCsv() const {
  std::string out = "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    out += StrFormat("counter,%s,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, per_node] : node_counters_) {
    for (const auto& [node, c] : per_node) {
      out += StrFormat("counter,%s,%llu\n",
                       LabeledName(name, node).c_str(),
                       static_cast<unsigned long long>(c.value()));
    }
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("gauge,%s,%s\n", name.c_str(),
                     JsonNumber(g.value()).c_str());
  }
  for (const auto& [name, per_node] : node_gauges_) {
    for (const auto& [node, g] : per_node) {
      out += StrFormat("gauge,%s,%s\n", LabeledName(name, node).c_str(),
                       JsonNumber(g.value()).c_str());
    }
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("histogram_count,%s,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(h.count()));
    out += StrFormat("histogram_sum,%s,%s\n", name.c_str(),
                     JsonNumber(h.sum()).c_str());
    for (size_t i = 0; i < h.buckets().size(); ++i) {
      const std::string le =
          i < h.bounds().size() ? JsonNumber(h.bounds()[i]) : "inf";
      out += StrFormat("histogram_bucket,%s{le=%s},%llu\n", name.c_str(),
                       le.c_str(),
                       static_cast<unsigned long long>(h.buckets()[i]));
    }
  }
  return out;
}

MetricRegistry& GlobalMetrics() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

namespace {
thread_local MetricRegistry* t_metric_sink = nullptr;
}  // namespace

MetricRegistry& MetricSink() {
  return t_metric_sink != nullptr ? *t_metric_sink : GlobalMetrics();
}

ScopedMetricSink::ScopedMetricSink(MetricRegistry* sink)
    : saved_(t_metric_sink) {
  t_metric_sink = sink;
}

ScopedMetricSink::~ScopedMetricSink() { t_metric_sink = saved_; }

}  // namespace snapq::obs
