# Empty dependencies file for table3_query_savings.
# This may be replaced when dependencies are built.
