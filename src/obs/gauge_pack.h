// GaugePack: the shared gauge-publishing idiom every observer repeats —
// register a fixed set of named gauges at construction, cache the stable
// Gauge* handles, and publish by index on the (hot or sampled) path. The
// health monitor, accuracy auditor, energy ledger and topology monitor
// all follow the registry's hot-path contract this way; the pack extracts
// the boilerplate so each observer declares an enum of slots instead of a
// row of Gauge* members.
//
// Cost model: construction registers (and may allocate) once; Set() is a
// bounds-unchecked indexed pointer write — no lookup, no allocation —
// matching the cached-handle discipline MetricRegistry documents.
#ifndef SNAPQ_OBS_GAUGE_PACK_H_
#define SNAPQ_OBS_GAUGE_PACK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metric_registry.h"

namespace snapq::obs {

class GaugePack {
 public:
  /// Registers one gauge per name on `registry` (in order) and caches the
  /// handles. Slot i publishes to names[i]; callers index with an enum.
  GaugePack(MetricRegistry* registry, std::vector<std::string> names);

  /// Publishes `value` to slot `i`. One indexed pointer write.
  void Set(size_t i, double value) { gauges_[i]->Set(value); }
  /// Current value of slot `i`.
  double value(size_t i) const { return gauges_[i]->value(); }
  /// The underlying handle (for SetMax/Add-style updates).
  Gauge* gauge(size_t i) { return gauges_[i]; }

  size_t size() const { return gauges_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }

 private:
  std::vector<std::string> names_;
  std::vector<Gauge*> gauges_;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_GAUGE_PACK_H_
