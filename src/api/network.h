// SensorNetwork: the library's high-level facade. It wires together the
// simulator, per-node protocol agents, the dataset feed, the election /
// maintenance drivers and the query executor, exposing the workflow a
// deployment would follow:
//
//   SensorNetwork net(config);
//   net.AttachDataset(data);              // or SetMeasurements per tick
//   net.ScheduleTrainingBroadcasts(0, 10);
//   net.RunUntil(100);
//   net.RunElection(100);                 // discover representatives
//   auto result = net.Query("SELECT avg(value) FROM sensors "
//                           "WHERE loc IN NORTH_HALF USE SNAPSHOT");
#ifndef SNAPQ_API_NETWORK_H_
#define SNAPQ_API_NETWORK_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "net/energy.h"
#include "obs/accuracy.h"
#include "obs/flight_recorder.h"
#include "obs/health_monitor.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/topo.h"
#include "obs/tracer.h"
#include "query/catalog.h"
#include "query/continuous.h"
#include "query/executor.h"
#include "query/explain.h"
#include "sim/simulator.h"
#include "snapshot/agent.h"
#include "snapshot/config.h"
#include "snapshot/election.h"
#include "snapshot/maintenance.h"

namespace snapq {

/// Deployment-level configuration.
struct NetworkConfig {
  size_t num_nodes = 100;
  Rect area = Rect::UnitSquare();
  /// Per-node transmission range (uniform). The paper's default sqrt(2)
  /// lets every node hear the whole unit square.
  double transmission_range = 1.4142135623730951;
  double loss_probability = 0.0;
  double snoop_probability = 0.0;
  EnergyModel energy = EnergyModel::Unlimited();
  SnapshotConfig snapshot;
  uint64_t seed = 1;
  /// Explicit placement; when empty, nodes are placed uniformly at random
  /// in `area` (the paper's setup).
  std::vector<Point> positions;
};

/// A fully wired simulated deployment.
class SensorNetwork {
 public:
  explicit SensorNetwork(const NetworkConfig& config);

  SensorNetwork(const SensorNetwork&) = delete;
  SensorNetwork& operator=(const SensorNetwork&) = delete;

  size_t num_nodes() const { return agents_.size(); }

  // -- Data feed ------------------------------------------------------------

  /// Pre-schedules measurement updates for every tick of `data`'s horizon:
  /// at tick t each node i reads data.Value(i, t). Data events are
  /// scheduled before any protocol event of the same tick, so readings are
  /// always fresh. Must be called before running the simulator.
  Status AttachDataset(Dataset data);

  /// Directly sets every node's current reading (values[i] -> node i).
  void SetMeasurements(const std::vector<double>& values);

  /// Schedules each live node to broadcast its value once per tick in
  /// [from, to) — the paper's model-training phase ("a single query
  /// selecting the values from all nodes" for the first 10 time units).
  void ScheduleTrainingBroadcasts(Time from, Time to);

  // -- Simulation control -----------------------------------------------------

  void RunUntil(Time t) { sim_->RunUntil(t); }
  void RunAll() { sim_->RunAll(); }
  Time now() const { return sim_->now(); }

  // -- Snapshot lifecycle -----------------------------------------------------

  /// Network-wide representative discovery starting at t0 (>= now()).
  ElectionStats RunElection(Time t0);

  /// Maintenance rounds every `interval` ticks in [first, horizon); see
  /// MaintenanceDriver.
  void ScheduleMaintenance(Time first, Time horizon, Time interval,
                           MaintenanceDriver::RoundCallback callback = {});

  /// Current representation state.
  SnapshotView Snapshot() const { return CaptureSnapshot(agents_); }
  ElectionStats SnapshotStats() { return SummarizeSnapshot(*sim_, agents_); }

  // -- Observability ----------------------------------------------------------

  /// Enables causal tracing: creates the tracer (owned) and attaches it to
  /// the simulator. Subsequent elections, maintenance rounds, queries and
  /// violations mint traces per `config.sampling`. Idempotent per network
  /// (a second call replaces the tracer and drops recorded spans).
  obs::Tracer& EnableTracing(const obs::TracerConfig& config = {});
  /// The attached tracer, or nullptr when tracing was never enabled.
  obs::Tracer* tracer() { return tracer_.get(); }

  /// Probes snapshot health right now and feeds the sample into the
  /// monitor (created on first use, gauges in sim().registry()).
  obs::HealthSample SampleHealth();
  /// Samples health every `interval` ticks in [first, horizon).
  void ScheduleHealthSampling(Time first, Time horizon, Time interval);
  /// The health monitor, or nullptr before the first sample.
  obs::SnapshotHealthMonitor* health_monitor() { return monitor_.get(); }

  /// Enables fixed-memory time-series telemetry: creates the recorder
  /// (owned) tracking the default series — the health gauges, the message
  /// counter rates and process RSS — plus the SLO watchdog, and splices a
  /// flight recorder in front of the journal sink so the last N protocol
  /// events stay available for a blackbox dump. When
  /// `config.blackbox_path` is non-empty, every confirmed breach dumps a
  /// `*.blackbox.json` there. A second call replaces the recorder and
  /// watchdog (series reset) but keeps the installed flight recorder.
  obs::TelemetryRecorder& EnableTelemetry(const obs::TelemetryConfig& config = {});
  /// The telemetry recorder, or nullptr when telemetry was never enabled.
  obs::TelemetryRecorder* telemetry() { return telemetry_.get(); }
  /// The SLO watchdog, or nullptr when telemetry was never enabled.
  obs::SloWatchdog* watchdog() { return watchdog_.get(); }
  /// The journal-teeing flight recorder, or nullptr before EnableTelemetry.
  obs::FlightRecorder* flight_recorder() { return flight_recorder_; }

  /// Enables per-joule energy accounting: creates the energy ledger
  /// (owned; `energy.*` gauges in sim().registry()) and attaches it to the
  /// simulator, so every subsequent battery drain is attributed by message
  /// type, direction, cache/direct cause and causal trace-root kind.
  /// Enable before running the simulation — the ledger mirrors each
  /// battery from full charge. When telemetry is enabled (before or after
  /// this call) the energy gauges are tracked as time series and the SLO
  /// grammar sees them (`energy.burn_rate slope >= 0.5 for 10`); with an
  /// unlimited battery the remaining-charge/forecast series are skipped
  /// (they would be infinite and serialize as JSON null). A second call
  /// replaces the ledger (accounting restarts from full charge).
  obs::EnergyLedger& EnableEnergyLedger();
  /// The ledger, or nullptr when energy accounting was never enabled.
  obs::EnergyLedger* energy_ledger() { return energy_ledger_.get(); }

  /// Enables ground-truth accuracy auditing: creates the auditor (owned;
  /// gauges in sim().registry(), one `accuracy_audit` journal event per
  /// round) and injects it into every subsequent Query/Explain/
  /// RunContinuousQuery round. SampleTelemetry additionally sweeps the
  /// current representation state (AuditSnapshotNow), so sampled ticks are
  /// audited even between queries. When telemetry is enabled — before or
  /// after this call — the accuracy gauges are tracked as time series and
  /// the SLO grammar sees them (`accuracy.violation_rate value <= 0.05
  /// for 10`). A second call replaces the auditor (histograms reset).
  obs::AccuracyAuditor& EnableAccuracyAudit(
      const obs::AccuracyAuditConfig& config = {});
  /// The auditor, or nullptr when auditing was never enabled.
  obs::AccuracyAuditor* accuracy_auditor() { return auditor_.get(); }

  /// Audits every live representation entry against ground truth right now
  /// (one kSweep round, judged against the deployment's configured T).
  /// No-op when auditing is not enabled.
  void AuditSnapshotNow();

  /// Enables the topology & churn observatory: creates the monitor (owned;
  /// `topo.*` / `churn.*` gauges in sim().registry(), one `topo.sample`
  /// journal event per sample) and attaches its link observer to the
  /// simulator, so every subsequent addressed delivery/loss and snoop
  /// feeds the per-directed-link stats. SampleTelemetry additionally
  /// analyzes the topology each sampled tick (SampleTopologyNow). When
  /// telemetry is enabled — before or after this call — the topo/churn
  /// gauges are tracked as time series and the SLO grammar sees them
  /// (`topo.partitions value <= 1 for 20`). A second call replaces the
  /// monitor (link stats and churn state reset).
  obs::TopologyMonitor& EnableTopologyMonitor(
      const obs::TopologyConfig& config = {});
  /// The monitor, or nullptr when it was never enabled.
  obs::TopologyMonitor* topology_monitor() { return topo_monitor_.get(); }

  /// Analyzes the network structure right now: refreshes the monitor's
  /// cluster view from the agents, runs the connectivity/churn analysis
  /// and publishes the gauges. Returns the snapshot (valid until the next
  /// sample). Requires EnableTopologyMonitor.
  const obs::TopologySnapshot& SampleTopologyNow();

  /// Parses and installs an SLO rule (`<metric> <stat> <op> <threshold>
  /// [for <ticks>]`). Returns false on malformed text or when telemetry is
  /// not enabled.
  bool AddSloRule(std::string_view text);

  /// Samples health, then every telemetry probe, then evaluates the SLO
  /// rules — one watchdog tick. Requires EnableTelemetry.
  void SampleTelemetry();
  /// Runs SampleTelemetry every `interval` ticks in [first, horizon);
  /// interval 0 uses the telemetry config's sample_interval.
  void ScheduleTelemetrySampling(Time first, Time horizon, Time interval = 0);

  // -- Queries ----------------------------------------------------------------

  /// Parses and runs one round of `sql` (sink defaults to node 0).
  Result<QueryResult> Query(const std::string& sql,
                            const ExecutionOptions& options = {});

  /// Explains `sql` (with or without the EXPLAIN prefix): plan, per-node
  /// provenance and cost estimate. "EXPLAIN ANALYZE ..." also executes and
  /// joins the actuals; plain "EXPLAIN ..." (and bare queries) plan only.
  Result<ExplainReport> Explain(const std::string& sql,
                                const ExecutionOptions& options = {});

  /// Schedules a continuous query (SAMPLE INTERVAL ... FOR ...): one
  /// execution round per sampling epoch starting at `start` >= now().
  /// Returns the number of epochs scheduled.
  Result<int64_t> RunContinuousQuery(
      const std::string& sql, Time start,
      ContinuousQueryRunner::EpochCallback callback,
      const ExecutionOptions& options = {});

  QueryExecutor& executor() { return *executor_; }

  // -- Internals (exposed for experiments and tests) --------------------------

  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  SnapshotAgent& agent(NodeId id) { return *agents_[id]; }
  const SnapshotAgent& agent(NodeId id) const { return *agents_[id]; }
  std::vector<std::unique_ptr<SnapshotAgent>>& agents() { return agents_; }
  const NetworkConfig& config() const { return config_; }
  const Point& position(NodeId id) const { return sim_->links().position(id); }
  /// The attached dataset, or nullptr.
  const Dataset* dataset() const {
    return dataset_.has_value() ? &*dataset_ : nullptr;
  }

 private:
  NetworkConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::vector<std::unique_ptr<SnapshotAgent>> agents_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<ContinuousQueryRunner> continuous_;
  std::unique_ptr<MaintenanceDriver> maintenance_;
  std::optional<Dataset> dataset_;
  obs::SnapshotHealthMonitor& EnsureHealthMonitor();
  /// Tracks the accuracy gauges as telemetry series (idempotent — the
  /// recorder dedupes by name); called from whichever of EnableTelemetry /
  /// EnableAccuracyAudit runs second.
  void TrackAccuracySeries();
  /// Tracks the energy gauges as telemetry series (idempotent); called
  /// from whichever of EnableTelemetry / EnableEnergyLedger runs second.
  /// Remaining-charge and forecast series are skipped for unlimited
  /// batteries (satellite: no infinite gauges in timeline/blackbox JSON).
  void TrackEnergySeries();
  /// Tracks the topology/churn gauges as telemetry series (idempotent);
  /// called from whichever of EnableTelemetry / EnableTopologyMonitor
  /// runs second.
  void TrackTopoSeries();
  /// Copies `options` with the auditor injected (when enabled and the
  /// caller has not set a hook of their own).
  ExecutionOptions WithAudit(const ExecutionOptions& options) const;

  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::SnapshotHealthMonitor> monitor_;
  std::unique_ptr<obs::TelemetryRecorder> telemetry_;
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  std::unique_ptr<obs::AccuracyAuditor> auditor_;
  std::unique_ptr<obs::EnergyLedger> energy_ledger_;
  std::unique_ptr<obs::TopologyMonitor> topo_monitor_;
  obs::FlightRecorder* flight_recorder_ = nullptr;  // owned by the journal
};

}  // namespace snapq

#endif  // SNAPQ_API_NETWORK_H_
