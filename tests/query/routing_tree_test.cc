#include "query/routing_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "net/topology.h"

namespace snapq {
namespace {

LinkModel Chain(size_t n, double range) {
  std::vector<Point> pts;
  std::vector<double> ranges;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i), 0.0});
    ranges.push_back(range);
  }
  return LinkModel(std::move(pts), std::move(ranges), 0.0);
}

TEST(RoutingTreeTest, ChainBuildsLinearTree) {
  const LinkModel links = Chain(5, 1.0);
  const RoutingTree tree =
      RoutingTree::Build(links, std::vector<bool>(5, true), 0);
  EXPECT_EQ(tree.depth(0), 0);
  EXPECT_EQ(tree.parent(0), kInvalidNode);
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(tree.parent(i), i - 1);
    EXPECT_EQ(tree.depth(i), static_cast<int>(i));
  }
}

TEST(RoutingTreeTest, PathToSinkWalksParents) {
  const LinkModel links = Chain(4, 1.0);
  const RoutingTree tree =
      RoutingTree::Build(links, std::vector<bool>(4, true), 0);
  EXPECT_EQ(tree.PathToSink(3), (std::vector<NodeId>{3, 2, 1, 0}));
  EXPECT_EQ(tree.PathToSink(0), (std::vector<NodeId>{0}));
}

TEST(RoutingTreeTest, DeadNodePartitionsChain) {
  const LinkModel links = Chain(5, 1.0);
  std::vector<bool> alive(5, true);
  alive[2] = false;
  const RoutingTree tree = RoutingTree::Build(links, alive, 0);
  EXPECT_TRUE(tree.IsReachable(1));
  EXPECT_FALSE(tree.IsReachable(2));
  EXPECT_FALSE(tree.IsReachable(3));
  EXPECT_FALSE(tree.IsReachable(4));
  EXPECT_TRUE(tree.PathToSink(4).empty());
}

TEST(RoutingTreeTest, DeadSinkReachesNothing) {
  const LinkModel links = Chain(3, 1.0);
  std::vector<bool> alive(3, true);
  alive[0] = false;
  const RoutingTree tree = RoutingTree::Build(links, alive, 0);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_FALSE(tree.IsReachable(i));
  }
}

TEST(RoutingTreeTest, BfsGivesMinimumHops) {
  // Full mesh: everyone is depth 1 from the sink.
  const LinkModel links = Chain(6, 10.0);
  const RoutingTree tree =
      RoutingTree::Build(links, std::vector<bool>(6, true), 2);
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(tree.depth(i), i == 2 ? 0 : 1);
  }
}

TEST(RoutingTreeTest, AsymmetricLinksAreNotTreeEdges) {
  // Node 1 can hear node 0 but not vice versa: no usable tree edge.
  const LinkModel links({{0, 0}, {1, 0}}, {2.0, 0.5}, 0.0);
  const RoutingTree tree =
      RoutingTree::Build(links, std::vector<bool>(2, true), 0);
  EXPECT_FALSE(tree.IsReachable(1));
}

TEST(RoutingTreeTest, FavorBiasesParentChoice) {
  // Diamond: sink 0 at origin; 1 and 2 both at depth 1; 3 hears both.
  const LinkModel links({{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                        {1.05, 1.05, 1.05, 1.05}, 0.0);
  const std::vector<bool> alive(4, true);
  // Unbiased: smallest id in the layer expands first -> parent(3) == 1.
  const RoutingTree plain = RoutingTree::Build(links, alive, 0);
  EXPECT_EQ(plain.parent(3), 1u);
  // Favor node 2 (e.g. it is a representative): it expands first.
  std::vector<bool> favor(4, false);
  favor[2] = true;
  const RoutingTree biased = RoutingTree::Build(links, alive, 0, &favor);
  EXPECT_EQ(biased.parent(3), 2u);
  EXPECT_EQ(biased.depth(3), 2);
}

TEST(RoutingTreeTest, EveryLiveConnectedNodeGetsAParent) {
  Rng rng(8);
  const auto pts = PlaceUniform(60, Rect::UnitSquare(), rng);
  const LinkModel links(pts, std::vector<double>(60, 0.35), 0.0);
  const RoutingTree tree =
      RoutingTree::Build(links, std::vector<bool>(60, true), 7);
  for (NodeId i = 0; i < 60; ++i) {
    if (!tree.IsReachable(i)) continue;
    const auto path = tree.PathToSink(i);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), i);
    EXPECT_EQ(path.back(), 7u);
    // Depths strictly decrease along the path.
    for (size_t k = 1; k < path.size(); ++k) {
      EXPECT_EQ(tree.depth(path[k]), tree.depth(path[k - 1]) - 1);
    }
  }
}

TEST(RoutingTreeTest, DeterministicConstruction) {
  Rng rng(9);
  const auto pts = PlaceUniform(40, Rect::UnitSquare(), rng);
  const LinkModel links(pts, std::vector<double>(40, 0.4), 0.0);
  const RoutingTree a =
      RoutingTree::Build(links, std::vector<bool>(40, true), 0);
  const RoutingTree b =
      RoutingTree::Build(links, std::vector<bool>(40, true), 0);
  for (NodeId i = 0; i < 40; ++i) {
    EXPECT_EQ(a.parent(i), b.parent(i));
  }
}

}  // namespace
}  // namespace snapq
