#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace snapq::exec {

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = static_cast<size_t>(std::max(num_threads, 1));
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  // unfinished_ goes up before the task becomes visible to workers, so a
  // worker finishing it instantly can never drive the count negative.
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++unfinished_;
  }
  size_t victim;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    victim = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
    queues_[victim]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  {
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::TryGetTask(size_t index, Task* out) {
  // Own queue first (front: the submission order the owner was dealt),
  // then sweep the other queues as a thief (back: cold end, minimizes
  // interference with the owner).
  for (size_t attempt = 0; attempt < queues_.size(); ++attempt) {
    const size_t i = (index + attempt) % queues_.size();
    WorkerQueue& q = *queues_[i];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (attempt == 0) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
    {
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      --queued_;
    }
    return true;
  }
  return false;
}

void ThreadPool::OnTaskDone() {
  bool now_idle;
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    now_idle = (--unfinished_ == 0);
  }
  if (now_idle) idle_cv_.notify_all();
}

void ThreadPool::WorkerLoop(size_t index) {
  while (true) {
    Task task;
    if (TryGetTask(index, &task)) {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = Task();  // release captures before reporting completion
      OnTaskDone();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    if (queued_ > 0) continue;  // work arrived between the scan and here
    wake_cv_.wait(lock);
  }
}

}  // namespace snapq::exec
