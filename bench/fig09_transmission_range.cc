// Figure 9: number of representatives vs transmission range, for several
// K. Ranges below 0.2 often disconnect a 100-node network (§6.1), so the
// sweep starts there.
//
// Paper shape: representatives fall as range grows and flatten past ~0.7
// (sqrt(0.5): a centrally-placed node hears the whole unit square).
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig09_transmission_range,
                "Figure 9: representatives vs transmission range") {
  using namespace snapq;
  bench::Driver driver(ctx, "Figure 9: representatives vs transmission range",
                       "N=100, P_loss=0, cache=2048B, T=1, sse; one line "
                       "per K");

  const std::vector<size_t> ks = {1, 5, 10, 20};
  std::vector<std::string> header = {"range"};
  for (size_t k : ks) header.push_back("K=" + std::to_string(k));
  TablePrinter table(std::move(header));

  for (double range : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0, 1.2, 1.4}) {
    std::vector<std::string> row = {TablePrinter::Num(range, 1)};
    for (size_t k : ks) {
      const RunningStats reps = MeanOverSeeds(
          static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
          [&](uint64_t seed) {
            SensitivityConfig config;
            config.num_classes = k;
            config.transmission_range = range;
            config.seed = seed;
            return static_cast<double>(
                RunSensitivityTrial(config).stats.num_active);
          },
          ctx.jobs);
      row.push_back(TablePrinter::Num(reps.mean(), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}
