#include "obs/topo.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "obs/json.h"

namespace snapq::obs {

// ---------------------------------------------------------------------------
// LinkObserver

namespace {

/// Next power of two >= n (and >= 8, so probing always has headroom).
size_t NextPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

/// Fibonacci hash of the packed link key into a `mask + 1`-sized table.
size_t HashKey(uint64_t key, size_t mask) {
  return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

}  // namespace

LinkObserver::LinkObserver(size_t num_nodes, size_t max_links)
    : num_nodes_(num_nodes) {
  const size_t all_pairs =
      num_nodes <= 1 ? 1 : num_nodes * (num_nodes - 1);
  max_links_ = max_links != 0 ? max_links
                              : std::min(all_pairs, kDefaultMaxLinks);
  // Twice the capacity keeps the open-addressing load factor <= 0.5, and
  // the capacity cap guarantees an empty slot terminates every probe.
  const size_t table_size = NextPow2(2 * max_links_);
  table_mask_ = table_size - 1;
  table_.resize(table_size);
}

LinkStats* LinkObserver::Touch(NodeId from, NodeId to, Time now) {
  const uint64_t key =
      static_cast<uint64_t>(from) * static_cast<uint64_t>(num_nodes_) + to;
  size_t slot = HashKey(key, table_mask_);
  while (true) {
    LinkStats& entry = table_[slot];
    if (entry.from == from && entry.to == to) {
      entry.last_activity = now;
      return &entry;
    }
    if (entry.from == kInvalidNode) {
      if (num_links_ >= max_links_) {
        ++dropped_;
        return nullptr;
      }
      entry.from = from;
      entry.to = to;
      entry.last_activity = now;
      ++num_links_;
      return &entry;
    }
    slot = (slot + 1) & table_mask_;
  }
}

void LinkObserver::RecordDelivery(NodeId from, NodeId to, Time now) {
  LinkStats* link = Touch(from, to, now);
  if (link == nullptr) return;
  ++link->deliveries;
  link->ewma_delivery = link->ewma_delivery < 0.0
                            ? 1.0
                            : (1.0 - kLinkEwmaAlpha) * link->ewma_delivery +
                                  kLinkEwmaAlpha;
}

void LinkObserver::RecordSnoop(NodeId from, NodeId to, Time now) {
  LinkStats* link = Touch(from, to, now);
  if (link == nullptr) return;
  ++link->snoops;
}

void LinkObserver::RecordLoss(NodeId from, NodeId to, Time now) {
  LinkStats* link = Touch(from, to, now);
  if (link == nullptr) return;
  ++link->losses;
  link->ewma_delivery = link->ewma_delivery < 0.0
                            ? 0.0
                            : (1.0 - kLinkEwmaAlpha) * link->ewma_delivery;
}

const LinkStats* LinkObserver::Find(NodeId from, NodeId to) const {
  const uint64_t key =
      static_cast<uint64_t>(from) * static_cast<uint64_t>(num_nodes_) + to;
  size_t slot = HashKey(key, table_mask_);
  while (true) {
    const LinkStats& entry = table_[slot];
    if (entry.from == from && entry.to == to) return &entry;
    if (entry.from == kInvalidNode) return nullptr;
    slot = (slot + 1) & table_mask_;
  }
}

std::vector<LinkStats> LinkObserver::SortedLinks() const {
  std::vector<LinkStats> out;
  out.reserve(num_links_);
  for (const LinkStats& entry : table_) {
    if (entry.from != kInvalidNode) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const LinkStats& a, const LinkStats& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  return out;
}

size_t LinkObserver::CountWeakLinks(double threshold,
                                    uint64_t min_attempts) const {
  size_t weak = 0;
  for (const LinkStats& entry : table_) {
    if (entry.from == kInvalidNode) continue;
    if (entry.attempts() < min_attempts) continue;
    if (entry.ewma_delivery >= 0.0 && entry.ewma_delivery < threshold) {
      ++weak;
    }
  }
  return weak;
}

// ---------------------------------------------------------------------------
// ClusterView

void ClusterView::Resize(size_t n) {
  alive.assign(n, 1);
  is_rep.assign(n, 0);
  representative.resize(n);
  for (size_t i = 0; i < n; ++i) representative[i] = static_cast<NodeId>(i);
}

// ---------------------------------------------------------------------------
// AnalyzeTopology

namespace {

/// Undirected closure over live nodes: u~v iff either direction is in
/// range (the relation LinkModel::IsConnected uses). Adjacency lists are
/// sorted and deduplicated, so the DFS below sees each edge exactly once
/// per endpoint.
std::vector<std::vector<NodeId>> BuildLiveAdjacency(
    const LinkModel& links, const std::vector<uint8_t>& alive) {
  const size_t n = links.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    for (NodeId v : links.Reachable(u)) {
      if (!alive[v]) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

/// One iterative Tarjan DFS over the undirected graph: fills the sorted
/// bridge and articulation lists. Iterative so 100k-node components don't
/// overflow the stack (ROADMAP item 2's scale).
void FindCutStructure(const std::vector<std::vector<NodeId>>& adj,
                      const std::vector<uint8_t>& alive,
                      std::vector<std::pair<NodeId, NodeId>>* bridges,
                      std::vector<NodeId>* articulation) {
  const size_t n = adj.size();
  std::vector<int64_t> disc(n, -1);
  std::vector<int64_t> low(n, 0);
  std::vector<uint8_t> is_art(n, 0);
  struct Frame {
    NodeId u;
    NodeId parent;
    size_t next;
  };
  std::vector<Frame> stack;
  int64_t timer = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (!alive[root] || disc[root] >= 0) continue;
    size_t root_children = 0;
    disc[root] = low[root] = timer++;
    stack.push_back({root, kInvalidNode, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < adj[frame.u].size()) {
        const NodeId v = adj[frame.u][frame.next++];
        if (v == frame.parent) continue;
        if (disc[v] < 0) {
          disc[v] = low[v] = timer++;
          if (frame.u == root) ++root_children;
          stack.push_back({v, frame.u, 0});
        } else {
          low[frame.u] = std::min(low[frame.u], disc[v]);
        }
      } else {
        const NodeId u = frame.u;
        stack.pop_back();
        if (stack.empty()) continue;
        Frame& parent = stack.back();
        low[parent.u] = std::min(low[parent.u], low[u]);
        if (low[u] > disc[parent.u]) {
          bridges->emplace_back(std::min(parent.u, u),
                                std::max(parent.u, u));
        }
        if (parent.u != root && low[u] >= disc[parent.u]) {
          is_art[parent.u] = 1;
        }
      }
    }
    if (root_children >= 2) is_art[root] = 1;
  }
  std::sort(bridges->begin(), bridges->end());
  for (NodeId i = 0; i < n; ++i) {
    if (is_art[i]) articulation->push_back(i);
  }
}

}  // namespace

TopologySnapshot AnalyzeTopology(const LinkModel& links,
                                 const ClusterView& view, Time now) {
  const size_t n = links.num_nodes();
  TopologySnapshot snap;
  snap.t = now;
  snap.num_nodes = n;

  // A partially-filled view defaults to "every node alive, nothing
  // clustered" so bare structural analyses need no protocol state.
  snap.alive = view.alive.size() == n ? view.alive
                                      : std::vector<uint8_t>(n, 1);
  if (view.representative.size() == n) {
    snap.representative = view.representative;
  } else {
    snap.representative.resize(n);
    for (NodeId i = 0; i < n; ++i) snap.representative[i] = i;
  }
  const std::vector<uint8_t> no_reps(n, 0);
  const std::vector<uint8_t>& is_rep =
      view.is_rep.size() == n ? view.is_rep : no_reps;

  const std::vector<std::vector<NodeId>> adj =
      BuildLiveAdjacency(links, snap.alive);

  // Degrees / isolation.
  snap.degree.assign(n, 0);
  uint64_t degree_sum = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (!snap.alive[i]) continue;
    ++snap.num_live;
    snap.degree[i] = static_cast<uint32_t>(adj[i].size());
    degree_sum += snap.degree[i];
    snap.max_degree = std::max<size_t>(snap.max_degree, snap.degree[i]);
    if (snap.degree[i] == 0) ++snap.isolated;
  }
  snap.avg_degree = snap.num_live == 0
                        ? 0.0
                        : static_cast<double>(degree_sum) /
                              static_cast<double>(snap.num_live);

  // Connected components (ids ascend with their lowest member id).
  snap.component.assign(n, -1);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    if (!snap.alive[i] || snap.component[i] >= 0) continue;
    const int32_t id = static_cast<int32_t>(snap.partitions++);
    snap.component[i] = id;
    queue.clear();
    queue.push_back(i);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (NodeId next : adj[queue[head]]) {
        if (snap.component[next] >= 0) continue;
        snap.component[next] = id;
        queue.push_back(next);
      }
    }
  }

  FindCutStructure(adj, snap.alive, &snap.bridges, &snap.articulation);

  // Per-cluster radius and BFS depth. A stamp array avoids re-clearing
  // the distance buffer per cluster.
  std::vector<int64_t> dist(n, -1);
  std::vector<uint32_t> stamp(n, 0);
  uint32_t current_stamp = 0;
  for (NodeId rep = 0; rep < n; ++rep) {
    if (!snap.alive[rep] || !is_rep[rep]) continue;
    ClusterTopoStats stats;
    stats.rep = rep;
    ++current_stamp;
    dist[rep] = 0;
    stamp[rep] = current_stamp;
    queue.clear();
    queue.push_back(rep);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (NodeId next : adj[u]) {
        if (stamp[next] == current_stamp) continue;
        stamp[next] = current_stamp;
        dist[next] = dist[u] + 1;
        queue.push_back(next);
      }
    }
    for (NodeId j = 0; j < n; ++j) {
      if (!snap.alive[j]) continue;
      const bool member = j == rep || snap.representative[j] == rep;
      if (!member) continue;
      ++stats.size;
      stats.radius = std::max(
          stats.radius, Distance(links.position(rep), links.position(j)));
      if (stats.depth >= 0) {
        if (stamp[j] != current_stamp) {
          stats.depth = -1;  // a member the rep cannot reach at all
        } else {
          stats.depth = std::max(stats.depth, dist[j]);
        }
      }
    }
    snap.clusters.push_back(stats);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// ChurnTracker

namespace {

enum ChurnSlot : size_t {
  kChurnTenureP50 = 0,
  kChurnFlapRate,
  kChurnElectionRate,
};

std::vector<std::string> ChurnGaugeNames() {
  return {"churn.rep_tenure_p50", "churn.flap_rate", "churn.election_rate"};
}

}  // namespace

ChurnTracker::ChurnTracker(size_t num_nodes, size_t grid,
                           MetricRegistry* registry)
    : num_nodes_(num_nodes),
      grid_(std::max<size_t>(1, grid)),
      gauges_(registry, ChurnGaugeNames()),
      flaps_counter_(registry->GetCounter("churn.flaps")),
      elections_counter_(registry->GetCounter("churn.elections")),
      tenures_counter_(registry->GetCounter("churn.tenures_completed")),
      prev_rep_(num_nodes, kInvalidNode),
      prev_is_rep_(num_nodes, 0),
      active_since_(num_nodes, -1),
      tenure_scratch_(num_nodes, 0.0) {
  region_counters_.reserve(grid_ * grid_);
  for (size_t cell = 0; cell < grid_ * grid_; ++cell) {
    region_counters_.push_back(registry->GetCounter(
        "churn.region_elections", static_cast<NodeId>(cell)));
  }
}

size_t ChurnTracker::RegionOf(const Point& p) const {
  const double w = bounds_.Width() > 0.0 ? bounds_.Width() : 1.0;
  const double h = bounds_.Height() > 0.0 ? bounds_.Height() : 1.0;
  const double gx = (p.x - bounds_.min_x) / w * static_cast<double>(grid_);
  const double gy = (p.y - bounds_.min_y) / h * static_cast<double>(grid_);
  const size_t cx = std::min(
      grid_ - 1, static_cast<size_t>(std::max(0.0, gx)));
  const size_t cy = std::min(
      grid_ - 1, static_cast<size_t>(std::max(0.0, gy)));
  return cy * grid_ + cx;
}

uint64_t ChurnTracker::RegionElections(size_t cell) const {
  return region_counters_[cell]->value();
}

void ChurnTracker::Observe(const ClusterView& view, const LinkModel& links,
                           Time now) {
  SNAPQ_CHECK_EQ(view.num_nodes(), num_nodes_);
  if (first_sweep_ && num_nodes_ > 0) {
    // Latch the deployment's bounding box for region bucketing. Mobility
    // can wander outside it; RegionOf clamps to the edge cells.
    bounds_ = Rect{links.position(0).x, links.position(0).y,
                   links.position(0).x, links.position(0).y};
    for (NodeId i = 1; i < num_nodes_; ++i) {
      const Point& p = links.position(i);
      bounds_.min_x = std::min(bounds_.min_x, p.x);
      bounds_.min_y = std::min(bounds_.min_y, p.y);
      bounds_.max_x = std::max(bounds_.max_x, p.x);
      bounds_.max_y = std::max(bounds_.max_y, p.y);
    }
  }

  uint64_t sweep_flaps = 0;
  uint64_t sweep_elections = 0;
  for (NodeId i = 0; i < num_nodes_; ++i) {
    const bool alive = view.alive[i] != 0;
    const bool holds_role = alive && view.is_rep[i] != 0;

    if (alive && prev_rep_[i] != kInvalidNode &&
        view.representative[i] != prev_rep_[i]) {
      ++sweep_flaps;
    }
    if (holds_role && !prev_is_rep_[i]) {
      ++sweep_elections;
      region_counters_[RegionOf(links.position(i))]->Inc();
      active_since_[i] = now;
    }
    if (prev_is_rep_[i] && !holds_role) {
      if (active_since_[i] >= 0) {
        tenure_hist_.Observe(static_cast<double>(now - active_since_[i]));
        ++completed_;
        tenures_counter_->Inc();
      }
      active_since_[i] = -1;
    }

    prev_is_rep_[i] = holds_role ? 1 : 0;
    prev_rep_[i] = alive ? view.representative[i] : kInvalidNode;
  }
  first_sweep_ = false;

  flaps_ += sweep_flaps;
  elections_ += sweep_elections;
  flap_rate_ = static_cast<double>(sweep_flaps);
  election_rate_ = static_cast<double>(sweep_elections);
  flaps_counter_->Inc(sweep_flaps);
  elections_counter_->Inc(sweep_elections);

  UpdateTenureP50(now);
  gauges_.Set(kChurnTenureP50, tenure_p50_);
  gauges_.Set(kChurnFlapRate, flap_rate_);
  gauges_.Set(kChurnElectionRate, election_rate_);
}

void ChurnTracker::UpdateTenureP50(Time now) {
  if (completed_ > 0) {
    tenure_p50_ = tenure_hist_.Percentile(50.0);
    return;
  }
  // Nothing completed yet: the median ongoing tenure keeps the gauge
  // informative from the first sweep after an election.
  size_t ongoing = 0;
  for (NodeId i = 0; i < num_nodes_; ++i) {
    if (active_since_[i] >= 0) {
      tenure_scratch_[ongoing++] = static_cast<double>(now - active_since_[i]);
    }
  }
  if (ongoing == 0) {
    tenure_p50_ = 0.0;
    return;
  }
  const size_t mid = ongoing / 2;
  std::nth_element(tenure_scratch_.begin(),
                   tenure_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   tenure_scratch_.begin() + static_cast<std::ptrdiff_t>(ongoing));
  tenure_p50_ = tenure_scratch_[mid];
}

// ---------------------------------------------------------------------------
// TopologyMonitor

namespace {

enum TopoSlot : size_t {
  kTopoPartitions = 0,
  kTopoBridges,
  kTopoArticulation,
  kTopoAvgDegree,
  kTopoIsolated,
  kTopoWeakLinks,
  kTopoLiveNodes,
  kTopoLinksObserved,
};

std::vector<std::string> TopoGaugeNames() {
  return {"topo.partitions",     "topo.bridges",    "topo.articulation_nodes",
          "topo.avg_degree",     "topo.isolated_nodes", "topo.weak_links",
          "topo.live_nodes",     "topo.links_observed"};
}

}  // namespace

TopologyMonitor::TopologyMonitor(const TopologyConfig& config,
                                 size_t num_nodes, MetricRegistry* registry,
                                 EventJournal* journal)
    : config_(config),
      observer_(num_nodes, config.max_links),
      churn_(num_nodes, config.churn_grid, registry),
      gauges_(registry, TopoGaugeNames()),
      samples_counter_(registry->GetCounter("topo.samples")),
      journal_(journal) {
  view_.Resize(num_nodes);
}

const TopologySnapshot& TopologyMonitor::Sample(const LinkModel& links,
                                                Time now) {
  churn_.Observe(view_, links, now);
  snapshot_ = AnalyzeTopology(links, view_, now);
  snapshot_.weak_links =
      observer_.CountWeakLinks(config_.weak_threshold,
                               config_.weak_min_attempts);
  ++num_samples_;

  gauges_.Set(kTopoPartitions, static_cast<double>(snapshot_.partitions));
  gauges_.Set(kTopoBridges, static_cast<double>(snapshot_.bridges.size()));
  gauges_.Set(kTopoArticulation,
              static_cast<double>(snapshot_.articulation.size()));
  gauges_.Set(kTopoAvgDegree, snapshot_.avg_degree);
  gauges_.Set(kTopoIsolated, static_cast<double>(snapshot_.isolated));
  gauges_.Set(kTopoWeakLinks, static_cast<double>(snapshot_.weak_links));
  gauges_.Set(kTopoLiveNodes, static_cast<double>(snapshot_.num_live));
  gauges_.Set(kTopoLinksObserved,
              static_cast<double>(observer_.num_links()));
  samples_counter_->Inc();

  if (journal_ != nullptr) {
    journal_->Emit("topo.sample", now, [&](JournalEvent& e) {
      e.Int("partitions", static_cast<int64_t>(snapshot_.partitions))
          .Int("bridges", static_cast<int64_t>(snapshot_.bridges.size()))
          .Int("articulation",
               static_cast<int64_t>(snapshot_.articulation.size()))
          .Int("isolated", static_cast<int64_t>(snapshot_.isolated))
          .Int("live", static_cast<int64_t>(snapshot_.num_live))
          .Int("weak_links", static_cast<int64_t>(snapshot_.weak_links))
          .Num("avg_degree", snapshot_.avg_degree)
          .Num("flap_rate", churn_.flap_rate())
          .Num("election_rate", churn_.election_rate())
          .Num("tenure_p50", churn_.tenure_p50());
    });
  }
  return snapshot_;
}

std::string TopologyMonitor::ToString() const {
  if (num_samples_ == 0) return "topology: no samples yet\n";
  std::ostringstream out;
  const TopologySnapshot& s = snapshot_;
  out << StrFormat(
      "topology @t=%lld (%llu samples)\n",
      static_cast<long long>(s.t),
      static_cast<unsigned long long>(num_samples_));
  out << StrFormat(
      "  partitions    %zu (%zu live / %zu nodes, %zu isolated)\n",
      s.partitions, s.num_live, s.num_nodes, s.isolated);
  out << StrFormat(
      "  degree        avg %.1f, max %zu\n", s.avg_degree, s.max_degree);
  out << StrFormat(
      "  cut structure %zu bridges, %zu articulation nodes\n",
      s.bridges.size(), s.articulation.size());
  out << StrFormat(
      "  links         %zu observed (%llu dropped), %zu weak (ewma < %.2f)\n",
      observer_.num_links(),
      static_cast<unsigned long long>(observer_.dropped_records()),
      s.weak_links, config_.weak_threshold);
  out << StrFormat(
      "  churn         flaps %.0f/sweep (%llu total), elections %.0f/sweep "
      "(%llu total), tenure p50 %.0f ticks\n",
      churn_.flap_rate(), static_cast<unsigned long long>(churn_.flaps_total()),
      churn_.election_rate(),
      static_cast<unsigned long long>(churn_.elections_total()),
      churn_.tenure_p50());

  if (!s.clusters.empty()) {
    TablePrinter clusters({"rep", "size", "radius", "depth"});
    for (const ClusterTopoStats& c : s.clusters) {
      clusters.AddRow({StrFormat("%u", c.rep),
                       StrFormat("%llu", static_cast<unsigned long long>(c.size)),
                       TablePrinter::Num(c.radius),
                       c.depth < 0 ? std::string("broken")
                                   : StrFormat("%lld",
                                               static_cast<long long>(c.depth))});
    }
    clusters.Print(out);
  }

  // The weakest observed links, worst first.
  std::vector<LinkStats> links = observer_.SortedLinks();
  std::stable_sort(links.begin(), links.end(),
                   [](const LinkStats& a, const LinkStats& b) {
                     return a.ewma_delivery < b.ewma_delivery;
                   });
  size_t shown = 0;
  for (const LinkStats& l : links) {
    if (l.attempts() < config_.weak_min_attempts) continue;
    if (l.ewma_delivery < 0.0 ||
        l.ewma_delivery >= config_.weak_threshold) {
      continue;
    }
    if (shown == 0) out << "weakest links (ewma < threshold):\n";
    if (++shown > 5) break;
    out << StrFormat(
        "  %u -> %u  ewma %.2f  (%llu ok, %llu lost, %llu snooped)\n",
        l.from, l.to, l.ewma_delivery,
        static_cast<unsigned long long>(l.deliveries),
        static_cast<unsigned long long>(l.losses),
        static_cast<unsigned long long>(l.snoops));
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// TopoMapToJson

std::string TopoMapToJson(const TopologySnapshot& snap,
                          const std::vector<Point>& positions,
                          const std::vector<LinkStats>& links,
                          const TopoMapMeta& meta) {
  SNAPQ_CHECK_EQ(positions.size(), snap.num_nodes);
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kTopoMapSchemaVersion << ",\n";
  out << "  \"kind\": \"snapq-topo\",\n";
  out << "  \"benchmark\": \"" << JsonEscape(meta.benchmark) << "\",\n";
  out << "  \"git_sha\": \"" << JsonEscape(meta.git_sha) << "\",\n";
  out << "  \"quick\": " << (meta.quick ? "true" : "false") << ",\n";
  out << "  \"t\": " << meta.t << ",\n";
  out << "  \"num_nodes\": " << snap.num_nodes << ",\n";
  out << "  \"live\": " << snap.num_live << ",\n";

  out << "  \"summary\": {\"partitions\": " << snap.partitions
      << ", \"bridges\": " << snap.bridges.size()
      << ", \"articulation_nodes\": " << snap.articulation.size()
      << ", \"isolated\": " << snap.isolated
      << ", \"avg_degree\": " << JsonNumber(snap.avg_degree)
      << ", \"max_degree\": " << snap.max_degree
      << ", \"weak_links\": " << snap.weak_links
      << ", \"links_observed\": " << links.size() << "},\n";

  out << "  \"clusters\": [";
  for (size_t i = 0; i < snap.clusters.size(); ++i) {
    const ClusterTopoStats& c = snap.clusters[i];
    if (i != 0) out << ", ";
    out << "{\"rep\": " << c.rep << ", \"size\": " << c.size
        << ", \"radius\": " << JsonNumber(c.radius)
        << ", \"depth\": " << c.depth << "}";
  }
  out << "],\n";

  out << "  \"bridges\": [";
  for (size_t i = 0; i < snap.bridges.size(); ++i) {
    if (i != 0) out << ", ";
    out << "[" << snap.bridges[i].first << ", " << snap.bridges[i].second
        << "]";
  }
  out << "],\n";

  out << "  \"articulation\": [";
  for (size_t i = 0; i < snap.articulation.size(); ++i) {
    if (i != 0) out << ", ";
    out << snap.articulation[i];
  }
  out << "],\n";

  out << "  \"extras\": {";
  for (size_t i = 0; i < meta.extras.size(); ++i) {
    if (i != 0) out << ", ";
    out << "\"" << JsonEscape(meta.extras[i].first)
        << "\": " << JsonNumber(meta.extras[i].second);
  }
  out << "},\n";

  out << "  \"nodes\": [\n";
  for (NodeId i = 0; i < snap.num_nodes; ++i) {
    out << "    {\"id\": " << i << ", \"x\": " << JsonNumber(positions[i].x)
        << ", \"y\": " << JsonNumber(positions[i].y) << ", \"alive\": "
        << (snap.alive[i] ? "true" : "false")
        << ", \"degree\": " << snap.degree[i]
        << ", \"component\": " << snap.component[i] << ", \"rep\": "
        << static_cast<int64_t>(snap.representative[i]) << "}"
        << (i + 1 < snap.num_nodes ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"links\": [\n";
  for (size_t i = 0; i < links.size(); ++i) {
    const LinkStats& l = links[i];
    out << "    {\"from\": " << l.from << ", \"to\": " << l.to
        << ", \"deliveries\": " << l.deliveries
        << ", \"snoops\": " << l.snoops << ", \"losses\": " << l.losses
        << ", \"ewma\": " << JsonNumber(l.ewma_delivery)
        << ", \"last\": " << l.last_activity << "}"
        << (i + 1 < links.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace snapq::obs
