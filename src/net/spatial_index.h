// Uniform-grid spatial index over node positions.
//
// The grid partitions the plane into square cells of a fixed edge length
// (LinkModel uses the maximum transmission range). Each occupied cell owns
// a bucket of node ids kept in ascending order, and the cell table is an
// open-addressed hash map keyed by the packed integer cell coordinates —
// only occupied cells cost memory, so the index works for any deployment
// area without knowing its bounds up front.
//
// Why the cell edge is the *maximum* range: a node j can hear node i only
// when their distance is at most max(range), so every candidate neighbor
// of a cell lives in that cell or one of its 8 surrounding cells. A
// neighbor query therefore touches at most 9 buckets — O(k) in the local
// node count k instead of O(n) over the whole deployment.
//
// Determinism contract: queries never iterate the hash table. Cells are
// visited in row-major geometric order and each bucket yields ids in
// ascending order, so the candidate stream for a given placement is a
// pure function of the positions — independent of insertion order, hash
// capacity or prior churn. Callers that need a fully id-sorted row (the
// LinkModel adjacency invariant) sort the O(k) accepted candidates.
#ifndef SNAPQ_NET_SPATIAL_INDEX_H_
#define SNAPQ_NET_SPATIAL_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/geometry.h"
#include "net/node_id.h"

namespace snapq {

class SpatialIndex {
 public:
  /// An empty index (no nodes, unit cell edge).
  SpatialIndex() : SpatialIndex({}, 1.0) {}

  /// Builds the grid over `positions` (node i at positions[i]) with square
  /// cells of edge `cell_edge` > 0.
  SpatialIndex(std::span<const Point> positions, double cell_edge);

  double cell_edge() const { return cell_edge_; }
  size_t num_nodes() const { return num_nodes_; }
  /// Number of occupied cells (cells keep their slot once created, so this
  /// counts every cell that ever held a node).
  size_t num_cells() const { return buckets_.size(); }

  /// Incremental cell migration for a node that moved from `from` to
  /// `to`: O(bucket) when the cell changes, O(1) when it does not.
  void Move(NodeId id, const Point& from, const Point& to);

  /// Invokes fn(id) for every node whose cell intersects the closed disc
  /// (center, radius) — a candidate superset of the nodes actually within
  /// `radius`; callers distance-test. Cells are visited row-major and each
  /// bucket in ascending id order (see the determinism contract above).
  /// With radius <= cell_edge at most 3x3 cells are touched.
  template <typename Fn>
  void ForEachCandidate(const Point& center, double radius, Fn&& fn) const {
    const int32_t x0 = CellCoord(center.x - radius);
    const int32_t x1 = CellCoord(center.x + radius);
    const int32_t y0 = CellCoord(center.y - radius);
    const int32_t y1 = CellCoord(center.y + radius);
    for (int32_t cy = y0; cy <= y1; ++cy) {
      for (int32_t cx = x0; cx <= x1; ++cx) {
        const std::vector<NodeId>* bucket = FindBucket(PackKey(cx, cy));
        if (bucket == nullptr) continue;
        for (const NodeId id : *bucket) fn(id);
      }
    }
  }

  /// The bucket holding `p`'s cell (ascending ids), or an empty span.
  std::span<const NodeId> CellOf(const Point& p) const;

 private:
  /// Grid coordinate of one axis value, clamped so that the +/-1 cell
  /// arithmetic of a query can never overflow. Clamping is safe: a node
  /// farther than ~2^30 cell edges from a query point is farther than any
  /// radius <= cell_edge, and degenerate same-clamp collisions only ever
  /// *add* candidates (the caller distance-tests).
  int32_t CellCoord(double v) const;
  static uint64_t PackKey(int32_t cx, int32_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }
  uint64_t KeyOf(const Point& p) const {
    return PackKey(CellCoord(p.x), CellCoord(p.y));
  }

  const std::vector<NodeId>* FindBucket(uint64_t key) const;
  /// The bucket for `key`, creating the cell (and growing the table) if
  /// needed.
  std::vector<NodeId>& EnsureBucket(uint64_t key);
  void Insert(NodeId id, const Point& p);
  void GrowTable();

  double cell_edge_ = 1.0;
  double inv_cell_edge_ = 1.0;
  size_t num_nodes_ = 0;

  /// Open-addressed cell table: linear probing over power-of-two capacity.
  /// slot_bucket_[s] == -1 marks an empty slot; otherwise it indexes
  /// buckets_ and slot_key_[s] is the packed cell coordinate. Buckets are
  /// never deleted (an emptied cell keeps its slot), so no tombstones.
  std::vector<uint64_t> slot_key_;
  std::vector<int32_t> slot_bucket_;
  std::vector<std::vector<NodeId>> buckets_;
  size_t occupied_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_NET_SPATIAL_INDEX_H_
