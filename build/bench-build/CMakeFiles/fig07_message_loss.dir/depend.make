# Empty dependencies file for fig07_message_loss.
# This may be replaced when dependencies are built.
