file(REMOVE_RECURSE
  "../bench/fig12_sse"
  "../bench/fig12_sse.pdb"
  "CMakeFiles/fig12_sse.dir/fig12_sse.cc.o"
  "CMakeFiles/fig12_sse.dir/fig12_sse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
