file(REMOVE_RECURSE
  "../bench/ablation_sleep_mode"
  "../bench/ablation_sleep_mode.pdb"
  "CMakeFiles/ablation_sleep_mode.dir/ablation_sleep_mode.cc.o"
  "CMakeFiles/ablation_sleep_mode.dir/ablation_sleep_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sleep_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
