file(REMOVE_RECURSE
  "libsnapq_net.a"
)
