// Message-level TAG aggregation tests: tree formation by flooding,
// level-scheduled convergecast, loss/failure behavior and the snapshot
// contribution rule — all over real simulator messages.
#include "query/innetwork.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "query/executor.h"
#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  return config;
}

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  Net(std::vector<Point> positions, double range, SimConfig sim_config = {}) {
    const size_t n = positions.size();
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, range),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<SnapshotAgent>(i, sim.get(),
                                                       TestConfig(), 70 + i));
      agents.back()->Install();
      agents.back()->SetMeasurement(10.0 * (i + 1));
    }
  }
};

const Rect kAll{0.0, 0.0, 10.0, 10.0};

TEST(InNetworkTest, SumOverChainMatchesTruth) {
  // 4-node chain, unit spacing, range 1: depth = hop count.
  Net net({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 10.0 + 20.0 + 30.0 + 40.0);
  EXPECT_EQ(r.readings, 4u);
  EXPECT_EQ(r.participants, 4u);
}

TEST(InNetworkTest, AvgMinMaxCount) {
  Net net({{0, 0}, {1, 0}, {2, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  EXPECT_DOUBLE_EQ(
      *agg.Execute(kAll, AggregateFunction::kAvg, 0, false).aggregate, 20.0);
  EXPECT_DOUBLE_EQ(
      *agg.Execute(kAll, AggregateFunction::kMin, 0, false).aggregate, 10.0);
  EXPECT_DOUBLE_EQ(
      *agg.Execute(kAll, AggregateFunction::kMax, 0, false).aggregate, 30.0);
  EXPECT_DOUBLE_EQ(
      *agg.Execute(kAll, AggregateFunction::kCount, 0, false).aggregate,
      3.0);
}

TEST(InNetworkTest, RegionFiltersContributions) {
  Net net({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  // Region covers only nodes at x >= 2 (values 30, 40); nodes 1 routes.
  const Rect region{1.5, -1.0, 10.0, 1.0};
  const InNetworkResult r =
      agg.Execute(region, AggregateFunction::kSum, 0, false);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 70.0);
  EXPECT_EQ(r.readings, 2u);
}

TEST(InNetworkTest, EmptyRegionYieldsNoAnswer) {
  Net net({{0, 0}, {1, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const Rect nowhere{5.0, 5.0, 6.0, 6.0};
  const InNetworkResult r =
      agg.Execute(nowhere, AggregateFunction::kSum, 0, false);
  EXPECT_FALSE(r.aggregate.has_value());
  EXPECT_EQ(r.readings, 0u);
}

TEST(InNetworkTest, DeadRouterSeversSubtree) {
  Net net({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.0);
  net.sim->Kill(1);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  // Only the sink's own reading survives.
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 10.0);
  EXPECT_EQ(r.readings, 1u);
}

TEST(InNetworkTest, DeadSinkAnswersNothing) {
  Net net({{0, 0}, {1, 0}}, 1.0);
  net.sim->Kill(0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  EXPECT_FALSE(r.aggregate.has_value());
}

TEST(InNetworkTest, TotalLossDeliversOnlySinkReading) {
  SimConfig sim_config;
  sim_config.loss_probability = 1.0;
  Net net({{0, 0}, {1, 0}, {2, 0}}, 1.0, sim_config);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 10.0);
}

TEST(InNetworkTest, PartialLossUndercountsNeverOvercounts) {
  SimConfig sim_config;
  sim_config.loss_probability = 0.4;
  sim_config.seed = 17;
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({0.2 * i, 0.0});
  Net net(std::move(pts), 0.45, sim_config);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  for (int round = 0; round < 10; ++round) {
    const InNetworkResult r =
        agg.Execute(kAll, AggregateFunction::kCount, 0, false);
    ASSERT_TRUE(r.aggregate.has_value());
    EXPECT_LE(*r.aggregate, 20.0);
    EXPECT_GE(*r.aggregate, 1.0);
  }
}

TEST(InNetworkTest, MessageCountsAreBounded) {
  Net net({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  // TAG: each node forwards the request at most once and sends at most
  // one reply.
  EXPECT_LE(r.request_messages, 4u);
  EXPECT_LE(r.reply_messages, 3u);  // sink sends no reply
  EXPECT_EQ(r.reply_messages, 3u);  // everyone carried data here
}

TEST(InNetworkTest, SnapshotModeUsesRepresentatives) {
  // Full mesh; teach node 3 models of everyone, elect, then aggregate.
  Net net({{0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}}, 5.0);
  for (NodeId rep = 3, j = 0; j < 3; ++j) {
    const double vi = net.agents[rep]->measurement();
    const double vj = net.agents[j]->measurement();
    net.agents[rep]->models().cache().Observe(j, vi - 1, vj - 1, 0);
    net.agents[rep]->models().cache().Observe(j, vi + 1, vj + 1, 0);
  }
  RunGlobalElection(*net.sim, net.agents, net.sim->now(), TestConfig());
  ASSERT_EQ(net.agents[3]->mode(), NodeMode::kActive);

  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult r =
      agg.Execute(kAll, AggregateFunction::kSum, 0, true);
  ASSERT_TRUE(r.aggregate.has_value());
  // Exact models: the representative's estimates reproduce the true sum.
  EXPECT_NEAR(*r.aggregate, 100.0, 1e-6);
  EXPECT_EQ(r.readings, 4u);
  // Only the representative carried data (plus the sink if it self-reports
  // -- node 0 is passive here, so it does not).
  EXPECT_LE(r.participants, 2u);
}

TEST(InNetworkTest, BackToBackQueriesAreIndependent) {
  Net net({{0, 0}, {1, 0}}, 1.0);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  const InNetworkResult a =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  net.agents[1]->SetMeasurement(100.0);
  const InNetworkResult b =
      agg.Execute(kAll, AggregateFunction::kSum, 0, false);
  EXPECT_DOUBLE_EQ(*a.aggregate, 30.0);
  EXPECT_DOUBLE_EQ(*b.aggregate, 110.0);
}

TEST(InNetworkTest, MatchesAnalyticExecutorOnZeroLoss) {
  // The analytic executor and the message-level engine must agree when no
  // messages are lost.
  std::vector<Point> pts;
  for (int i = 0; i < 15; ++i) {
    pts.push_back({0.06 * i, 0.03 * (i % 4)});
  }
  Net net(std::move(pts), 0.2);
  InNetworkAggregator agg(net.sim.get(), &net.agents);
  QueryExecutor executor(net.sim.get(), &net.agents,
                         Catalog::WithStandardRegions(Rect::UnitSquare()));
  const Rect region{0.2, -1.0, 0.7, 1.0};
  const InNetworkResult wire =
      agg.Execute(region, AggregateFunction::kSum, 0, false);
  const QueryResult analytic = executor.ExecuteRegion(
      region, false, AggregateFunction::kSum, ExecutionOptions{});
  ASSERT_TRUE(wire.aggregate.has_value());
  ASSERT_TRUE(analytic.aggregate.has_value());
  EXPECT_NEAR(*wire.aggregate, *analytic.aggregate, 1e-9);
}

}  // namespace
}  // namespace snapq
