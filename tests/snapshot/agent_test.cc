// Message-level unit tests of the SnapshotAgent state machine: model
// building from overheard traffic, recall/ack handling, heartbeats,
// resignation and epoch-based stale-entry cleanup.
#include "snapshot/agent.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  config.heartbeat_timeout = 2;
  return config;
}

struct Pair {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  explicit Pair(size_t n = 3, SimConfig sim_config = {},
                SnapshotConfig config = TestConfig()) {
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({0.1 * static_cast<double>(i), 0.0});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, 10.0),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), config, 50 + i));
      agents.back()->Install();
    }
  }
};

TEST(AgentTest, BroadcastValueTrainsNeighborsModels) {
  Pair p;
  // Node 1 announces twice while node 0's own value moves in lockstep.
  p.agents[0]->SetMeasurement(1.0);
  p.agents[1]->SetMeasurement(10.0);
  p.agents[1]->BroadcastValue();
  p.sim->RunAll();
  p.agents[0]->SetMeasurement(2.0);
  p.agents[1]->SetMeasurement(20.0);
  p.agents[1]->BroadcastValue();
  p.sim->RunAll();
  p.agents[0]->SetMeasurement(3.0);
  const std::optional<double> est = p.agents[0]->EstimateFor(1);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 30.0, 1e-9);
}

TEST(AgentTest, ObservationChargesCacheOp) {
  SimConfig sim_config;
  sim_config.energy.initial_battery = 100.0;
  Pair p(3, sim_config);
  p.agents[1]->SetMeasurement(10.0);
  p.agents[1]->BroadcastValue();
  p.sim->RunAll();
  // Receivers 0 and 2 each paid 0.1 for the cache op; sender paid 1 tx.
  EXPECT_NEAR(p.sim->battery(0).remaining(), 99.9, 1e-9);
  EXPECT_NEAR(p.sim->battery(1).remaining(), 99.0, 1e-9);
  EXPECT_EQ(p.sim->metrics().cache_ops(), 2u);
}

TEST(AgentTest, RecallRemovesRepresentation) {
  Pair p;
  // Seed node 0 with a represented node via a forged Accept.
  Message accept;
  accept.type = MessageType::kAccept;
  accept.from = 1;
  accept.to = 0;
  accept.epoch = 3;
  p.sim->Send(accept);
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->represents().count(1), 1u);

  Message recall;
  recall.type = MessageType::kRecall;
  recall.from = 1;
  recall.to = 0;
  p.sim->Send(recall);
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->represents().count(1), 0u);
}

TEST(AgentTest, RepAckFromNewerEpochCleansStaleEntry) {
  Pair p;
  // Node 0 believes it represents node 2 at epoch 3.
  Message accept;
  accept.type = MessageType::kAccept;
  accept.from = 2;
  accept.to = 0;
  accept.epoch = 3;
  p.sim->Send(accept);
  p.sim->RunAll();
  ASSERT_EQ(p.agents[0]->represents().count(2), 1u);

  // Node 1 broadcasts a RepAck claiming node 2 at newer epoch 5.
  Message ack;
  ack.type = MessageType::kRepAck;
  ack.from = 1;
  ack.to = kBroadcastId;
  ack.ids = {2};
  ack.epochs = {5};
  p.sim->Send(ack);
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->represents().count(2), 0u);
}

TEST(AgentTest, RepAckFromOlderEpochDoesNotClean) {
  Pair p;
  Message accept;
  accept.type = MessageType::kAccept;
  accept.from = 2;
  accept.to = 0;
  accept.epoch = 7;
  p.sim->Send(accept);
  p.sim->RunAll();

  Message ack;
  ack.type = MessageType::kRepAck;
  ack.from = 1;
  ack.to = kBroadcastId;
  ack.ids = {2};
  ack.epochs = {4};  // older claim
  p.sim->Send(ack);
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->represents().count(2), 1u);
}

TEST(AgentTest, HeartbeatAnsweredWithEstimateAndFineTunesModel) {
  Pair p;
  // Make node 0 an ACTIVE representative of node 1 with a trained model.
  p.agents[0]->SetMeasurement(1.0);
  p.agents[1]->SetMeasurement(10.0);
  p.agents[1]->BroadcastValue();
  p.sim->RunAll();
  p.agents[0]->SetMeasurement(2.0);
  p.agents[1]->SetMeasurement(20.0);
  p.agents[1]->BroadcastValue();
  p.sim->RunAll();
  p.agents[0]->BeginLocalReelection();  // puts node 0 into an election...
  p.sim->RunAll();                      // ...which ends with it ACTIVE
  ASSERT_EQ(p.agents[0]->mode(), NodeMode::kActive);

  p.agents[0]->SetMeasurement(3.0);
  Message hb;
  hb.type = MessageType::kHeartbeat;
  hb.from = 1;
  hb.to = 0;
  hb.value = 30.5;
  hb.epoch = 2;
  const uint64_t replies_before =
      p.sim->metrics().sent(MessageType::kHeartbeatReply);
  p.sim->Send(hb);
  p.sim->RunAll();
  EXPECT_EQ(p.sim->metrics().sent(MessageType::kHeartbeatReply),
            replies_before + 1);
  // Heal: the heartbeat implies node 1 considers node 0 its rep.
  EXPECT_EQ(p.agents[0]->represents().count(1), 1u);
}

TEST(AgentTest, PassiveNodeStaysSilentOnHeartbeat) {
  Pair p;
  // Node 0 is PASSIVE (forced via direct message exchange): it must not
  // answer heartbeats.
  // Build a 2-node election where node 1 represents node 0.
  p.agents[0]->SetMeasurement(5.0);
  p.agents[1]->SetMeasurement(50.0);
  // Teach node 1 an exact model of node 0.
  p.agents[1]->models().cache().Observe(0, 49.0, 4.0, 0);
  p.agents[1]->models().cache().Observe(0, 51.0, 6.0, 0);
  p.agents[0]->BeginElection(0);
  p.agents[1]->BeginElection(0);
  p.sim->RunAll();
  ASSERT_EQ(p.agents[0]->mode(), NodeMode::kPassive);

  Message hb;
  hb.type = MessageType::kHeartbeat;
  hb.from = 2;
  hb.to = 0;
  hb.value = 1.0;
  const uint64_t replies_before =
      p.sim->metrics().sent(MessageType::kHeartbeatReply);
  p.sim->Send(hb);
  p.sim->RunAll();
  EXPECT_EQ(p.sim->metrics().sent(MessageType::kHeartbeatReply),
            replies_before);
}

TEST(AgentTest, ResignReleasesRepresentedNodes) {
  Pair p;
  // Node 1 represents node 0 (elected as above).
  p.agents[0]->SetMeasurement(5.0);
  p.agents[1]->SetMeasurement(50.0);
  p.agents[1]->models().cache().Observe(0, 49.0, 4.0, 0);
  p.agents[1]->models().cache().Observe(0, 51.0, 6.0, 0);
  p.agents[0]->BeginElection(0);
  p.agents[1]->BeginElection(0);
  p.sim->RunAll();
  ASSERT_EQ(p.agents[0]->representative(), 1u);

  // Node 1 resigns and dies: node 0 must start a re-election and, with
  // nobody else offering, end up ACTIVE (self-healing after rep failure).
  Message resign;
  resign.type = MessageType::kResign;
  resign.from = 1;
  resign.to = kBroadcastId;
  resign.ids = {0};
  p.sim->Send(resign);
  p.sim->Kill(1);
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->mode(), NodeMode::kActive);
}

TEST(AgentTest, SnoopedHeartbeatOnlyTrainsModel) {
  SimConfig sim_config;
  sim_config.snoop_probability = 1.0;
  Pair p(3, sim_config);
  p.agents[2]->SetMeasurement(7.0);
  // Heartbeat 0 -> 1; node 2 snoops. Node 2 must not reply but should
  // cache the observation.
  Message hb;
  hb.type = MessageType::kHeartbeat;
  hb.from = 0;
  hb.to = 1;
  hb.value = 3.5;
  p.sim->Send(hb);
  p.sim->RunAll();
  EXPECT_NE(p.agents[2]->models().cache().Line(0), nullptr);
  EXPECT_EQ(p.sim->metrics().sent(MessageType::kHeartbeatReply), 0u);
}

TEST(AgentTest, InfoReflectsState) {
  Pair p;
  p.agents[0]->SetMeasurement(4.0);
  const SnapshotView::NodeInfo info = p.agents[0]->Info();
  EXPECT_EQ(info.mode, NodeMode::kUndefined);
  EXPECT_EQ(info.representative, 0u);
  EXPECT_TRUE(info.alive);
  EXPECT_TRUE(info.represents.empty());
}

TEST(AgentTest, LoneActiveDetection) {
  Pair p;
  p.agents[0]->BeginLocalReelection();
  p.sim->RunAll();
  EXPECT_EQ(p.agents[0]->mode(), NodeMode::kActive);
  EXPECT_TRUE(p.agents[0]->IsLoneActive());
}

TEST(AgentTest, DeadAgentIgnoresMessages) {
  Pair p;
  p.sim->Kill(0);
  Message accept;
  accept.type = MessageType::kAccept;
  accept.from = 1;
  accept.to = 0;
  p.sim->Send(accept);
  p.sim->RunAll();
  EXPECT_TRUE(p.agents[0]->represents().empty());
}

}  // namespace
}  // namespace snapq
