// Spatial predicate resolution: binds a parsed query's WHERE clause to a
// concrete rectangle using the catalog, and validates the SELECT list.
#ifndef SNAPQ_QUERY_PREDICATE_H_
#define SNAPQ_QUERY_PREDICATE_H_

#include "common/geometry.h"
#include "common/status.h"
#include "query/ast.h"
#include "query/catalog.h"

namespace snapq {

/// Resolves the query's spatial filter. A query without a WHERE clause
/// covers everything (the catalog's EVERYWHERE region when registered, else
/// an unbounded default passed by the caller).
Result<Rect> ResolveRegion(const QuerySpec& spec, const Catalog& catalog,
                           const Rect& default_region);

/// Validates the SELECT list against the catalog's schema.
Status ValidateColumns(const QuerySpec& spec, const Catalog& catalog);

}  // namespace snapq

#endif  // SNAPQ_QUERY_PREDICATE_H_
