// The model-aware cache manager of §4, plus the round-robin (FIFO/LRU
// equivalent) baseline used in Figure 8.
//
// A node allots a fixed byte budget for caching neighbor observations. Each
// neighbor's history is a cache line of (x_i, x_j) pairs. When the cache is
// full and a new observation arrives, the manager weighs three actions —
// time-shift the neighbor's line, augment it at the expense of another
// line's oldest pair, or reject the observation — using the expected
// benefit of the resulting regression models over a "no answer" policy.
// Victims are always a line's *oldest* pair (linear-time updates, gradual
// shift toward fresh data). First observations from unknown neighbors
// ("newcomers") evict round-robin instead of by benefit, protecting good
// models of small-amplitude measurements.
#ifndef SNAPQ_MODEL_CACHE_MANAGER_H_
#define SNAPQ_MODEL_CACHE_MANAGER_H_

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "model/cache_line.h"
#include "model/linear_model.h"
#include "net/node_id.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"

namespace snapq {

/// Replacement policy selector.
enum class CachePolicy {
  kModelAware,  ///< §4's benefit-driven policy
  kRoundRobin,  ///< global FIFO baseline (Fig 8's comparison)
};

/// Currency of the cross-line eviction penalty (see PenaltyEvict): totals
/// are the default; per-pair averages follow §4's formulas literally but
/// degrade lines on rising data (kept for the ablation study and tests).
enum class PenaltyCurrency {
  kTotalBenefit,
  kAverageBenefit,
};

/// Cache sizing. The paper uses 4-byte floats, hence 8 bytes per pair; a
/// 2048-byte cache therefore holds 256 pairs.
struct CacheConfig {
  size_t capacity_bytes = 2048;
  size_t bytes_per_pair = 8;
  CachePolicy policy = CachePolicy::kModelAware;
  PenaltyCurrency penalty = PenaltyCurrency::kTotalBenefit;

  size_t capacity_pairs() const {
    return bytes_per_pair == 0 ? 0 : capacity_bytes / bytes_per_pair;
  }
};

/// Per-neighbor observation cache with model-aware admission/replacement.
class CacheManager {
 public:
  /// What Observe() did with the new observation (exposed for tests,
  /// metrics and the Fig 8 experiment).
  enum class Action {
    kInsertedFree,      ///< cache had spare capacity
    kInsertedNewcomer,  ///< first observation; round-robin victim evicted
    kTimeShifted,       ///< dropped own oldest, appended the new pair
    kAugmented,         ///< grew the line; another line's oldest evicted
    kRejected,          ///< the new observation was discarded
  };
  static constexpr size_t kNumActions = 5;

  explicit CacheManager(const CacheConfig& config);

  /// Hooks this cache into the simulation's observability layer: action
  /// counters ("cache.action.rejected", ...), the "model.refits" counter,
  /// and "cache.evict" journal events attributed to node `self`. Either
  /// pointer may be null (that aspect stays disabled); neither is owned and
  /// both must outlive this object. Unbound caches pay one null check per
  /// observation.
  void BindObservability(obs::MetricRegistry* registry,
                         obs::EventJournal* journal, NodeId self);

  /// Feeds one observation: own measurement `x` and neighbor `j`'s
  /// measurement `y`, collected at the same time `t`.
  Action Observe(NodeId j, double x, double y, Time t);

  /// The cached line for neighbor `j`, or nullptr if none.
  const CacheLine* Line(NodeId j) const;

  /// The current sse-optimal model for neighbor `j` (nullopt when no
  /// observations are cached).
  std::optional<LinearModel> ModelFor(NodeId j) const;

  /// Estimate x̂_j given this node's current measurement `own_x`; nullopt
  /// when no model is available.
  std::optional<double> Estimate(NodeId j, double own_x) const;

  size_t used_pairs() const { return used_pairs_; }
  size_t capacity_pairs() const { return config_.capacity_pairs(); }
  size_t num_lines() const { return lines_.size(); }

  /// Neighbors with at least one cached pair, ascending id.
  std::vector<NodeId> CachedNeighbors() const;

  /// Sum over lines of benefit(c, a*(c), b*(c)); the quantity the
  /// model-aware policy locally maximizes (used by property tests).
  double TotalBenefit() const;

  const CacheConfig& config() const { return config_; }

 private:
  struct Entry {
    NodeId id = kInvalidNode;
    CacheLine line;
    /// Cached Penalty_Evict value; recomputed lazily after line changes.
    mutable std::optional<double> penalty;
  };
  /// The line directory: entries sorted by neighbor id in one contiguous
  /// vector (a flat map). The model-aware policy scans every line per
  /// full-cache observation, which makes iteration the hot operation by
  /// far — walking a vector streams cache lines instead of chasing
  /// red-black-tree nodes scattered across the heap. Iteration order
  /// (ascending id) matches the std::map it replaced, so victim choices
  /// and round-robin order are unchanged. Inserts/erases shift entries,
  /// but lines are few and Entry moves never allocate (CacheLine stores
  /// its pairs in a vector).
  using LineTable = std::vector<Entry>;

  Action ObserveModelAware(NodeId j, double x, double y, Time t);
  Action ObserveRoundRobin(NodeId j, double x, double y, Time t);

  void CountAction(Action action) {
    obs::Counter* c = action_counters_[static_cast<size_t>(action)];
    if (c != nullptr) c->Inc();
  }

  /// First entry with id >= j (lines_.end() when none).
  LineTable::iterator LowerBound(NodeId j);
  /// The entry for `j`, or lines_.end().
  LineTable::iterator Find(NodeId j);
  LineTable::const_iterator Find(NodeId j) const;
  /// The entry for `j`, inserted (empty, sorted position) if absent.
  Entry& LineFor(NodeId j);
  /// Removes `j`'s entry if present.
  void EraseLine(NodeId j);

  /// Penalty_Evict for `entry`: benefit(c') - benefit(c' minus oldest).
  double PenaltyEvict(const Entry& entry) const;

  /// Evicts the oldest pair of `it`'s line; erases the line if emptied
  /// (invalidating iterators and entry references).
  void EvictOldest(LineTable::iterator it);

  /// Round-robin victim selection among non-empty lines other than `j`;
  /// returns lines_.end() when there is no candidate.
  LineTable::iterator PickRoundRobinVictim(NodeId j);

  CacheConfig config_;
  LineTable lines_;
  size_t used_pairs_ = 0;
  /// Round-robin cursor (newcomer evictions + baseline policy).
  NodeId rr_cursor_ = 0;
  /// Insertion order across all pairs, for the round-robin/FIFO baseline.
  std::deque<NodeId> fifo_order_;

  // Observability (optional; see BindObservability). All null when unbound.
  std::array<obs::Counter*, kNumActions> action_counters_{};
  obs::Counter* refit_counter_ = nullptr;
  obs::EventJournal* journal_ = nullptr;
  NodeId self_ = kInvalidNode;
  /// Timestamp of the in-flight Observe(), for journal attribution of the
  /// evictions it triggers.
  Time observe_time_ = 0;
};

const char* CacheActionName(CacheManager::Action action);

}  // namespace snapq

#endif  // SNAPQ_MODEL_CACHE_MANAGER_H_
