#include "net/energy.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(BatteryTest, StartsWithCapacity) {
  Battery b(500.0);
  EXPECT_TRUE(b.alive());
  EXPECT_DOUBLE_EQ(b.remaining(), 500.0);
}

TEST(BatteryTest, DefaultIsDead) {
  Battery b;
  EXPECT_FALSE(b.alive());
}

TEST(BatteryTest, ConsumeDecrements) {
  Battery b(10.0);
  EXPECT_TRUE(b.Consume(3.0));
  EXPECT_DOUBLE_EQ(b.remaining(), 7.0);
}

TEST(BatteryTest, ExactlyDrainingLastUnitSucceedsThenDead) {
  // The paper's battery of "500 transmissions" allows exactly 500 sends.
  Battery b(2.0);
  EXPECT_TRUE(b.Consume(1.0));
  EXPECT_TRUE(b.Consume(1.0));  // final transmission succeeds
  EXPECT_FALSE(b.alive());
  EXPECT_FALSE(b.Consume(1.0));
}

TEST(BatteryTest, OverdraftKillsWithoutSucceeding) {
  Battery b(0.5);
  EXPECT_FALSE(b.Consume(1.0));
  EXPECT_FALSE(b.alive());
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
}

TEST(BatteryTest, KillForcesDeath) {
  Battery b(100.0);
  b.Kill();
  EXPECT_FALSE(b.alive());
  EXPECT_FALSE(b.Consume(0.1));
}

TEST(BatteryTest, InfiniteCapacityNeverDies) {
  Battery b(EnergyModel::Unlimited().initial_battery);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(b.Consume(1000.0));
  }
  EXPECT_TRUE(b.alive());
}

TEST(EnergyModelTest, PaperDefaults) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_cost, 1.0);
  EXPECT_DOUBLE_EQ(m.cache_op_cost, 0.1);  // one tenth of a transmission
  EXPECT_DOUBLE_EQ(m.initial_battery, 500.0);
}

TEST(BatteryTest, ZeroCostConsumeKeepsAlive) {
  Battery b(1.0);
  EXPECT_TRUE(b.Consume(0.0));
  EXPECT_TRUE(b.alive());
}

}  // namespace
}  // namespace snapq
