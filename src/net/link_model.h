// Radio link model: who can hear whom, and which transmissions are lost.
//
// Reachability is range-based and potentially asymmetric (per-node
// transmission ranges; the paper notes the neighbor relation "is, in
// general, not symmetric"). Message loss is i.i.d. Bernoulli per (message,
// receiver) with probability P_loss, optionally overridden per directed
// link to model obstacles.
//
// Scale: adjacency is found through a uniform-grid spatial index (cell
// edge = the maximum transmission range), so construction is O(n * k) in
// the average neighborhood size k instead of the all-pairs O(n^2), and a
// SetPosition move re-tests only the O(k) nodes near the old and new
// positions. The adjacency itself is a compact CSR structure — one flat
// NodeId array plus per-node offset/length spans — with a small
// patch-overlay absorbing mobility edits (compacted back into the flat
// array when it grows past a fraction of the rows). Every row is kept in
// ascending id order, so neighbor iteration order is identical to the
// historical brute-force build.
#ifndef SNAPQ_NET_LINK_MODEL_H_
#define SNAPQ_NET_LINK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "net/node_id.h"
#include "net/spatial_index.h"

namespace snapq {

/// Immutable placement + ranges; precomputes reachability lists.
class LinkModel {
 public:
  /// `positions[i]` and `ranges[i]` describe node i. Loss probability
  /// applies to every delivery unless overridden per link.
  LinkModel(std::vector<Point> positions, std::vector<double> ranges,
            double loss_probability);

  size_t num_nodes() const { return positions_.size(); }
  const Point& position(NodeId id) const { return positions_[id]; }
  double range(NodeId id) const { return ranges_[id]; }
  double loss_probability() const { return loss_probability_; }

  /// Nodes within transmission range of `from` (excluding `from` itself),
  /// in ascending id order: the nodes that physically hear a broadcast by
  /// `from`, before loss. The span is invalidated by SetPosition.
  std::span<const NodeId> Reachable(NodeId from) const {
    const int32_t overlay = overlay_index_[from];
    if (overlay >= 0) {
      return overlay_rows_[static_cast<size_t>(overlay)];
    }
    return {adjacency_.data() + row_offset_[from], row_length_[from]};
  }

  /// True iff `to` is within `from`'s transmission range.
  bool CanReach(NodeId from, NodeId to) const;

  /// Samples whether a transmission from->to is lost (true = lost).
  bool SampleLoss(NodeId from, NodeId to, Rng& rng) const;

  /// Overrides the loss probability of the directed link from->to (e.g. an
  /// obstacle in the direct path, §3's spurious-representative scenario).
  void SetLinkLoss(NodeId from, NodeId to, double loss_probability);

  /// Moves node `id` to `position` and recomputes the affected
  /// reachability (mobility is one of the network dynamics §3 calls out).
  /// O(k) in the local node count near the old and new positions.
  void SetPosition(NodeId id, const Point& position);

  /// True if the undirected connectivity graph is connected (used by
  /// experiments to reject degenerate placements, §6.1 notes ranges below
  /// 0.2 often disconnect a 100-node network). Walks the stored adjacency
  /// (plus its transpose, for asymmetric ranges): O(n + edges).
  bool IsConnected() const;

  /// The spatial index the adjacency was built from (exposed for tests
  /// and diagnostics).
  const SpatialIndex& spatial_index() const { return index_; }
  /// Rows currently living in the mobility overlay instead of the flat
  /// CSR array (exposed for tests; bounded by the compaction threshold).
  size_t overlay_rows() const { return overlay_rows_.size(); }

 private:
  /// Returns `id`'s row as a mutable overlay vector, copying the CSR row
  /// on first touch (copy-on-write for mobility patches).
  std::vector<NodeId>& MutableRow(NodeId id);
  /// Rebuilds `id`'s row from the grid (O(k)), in ascending id order.
  void BuildRow(NodeId id, std::vector<NodeId>* out) const;
  /// Folds the overlay back into a fresh flat CSR array.
  void Compact();

  std::vector<Point> positions_;
  std::vector<double> ranges_;
  double loss_probability_;
  double max_range_ = 0.0;
  SpatialIndex index_;  // must follow positions_/ranges_ (init order)

  /// CSR adjacency: row i is adjacency_[row_offset_[i] ..
  /// row_offset_[i] + row_length_[i]), ascending ids. 64-bit offsets:
  /// total edge count can exceed 2^32 long before node ids do.
  std::vector<NodeId> adjacency_;
  std::vector<uint64_t> row_offset_;
  std::vector<uint32_t> row_length_;
  /// Mobility overlay: overlay_index_[i] >= 0 means row i was rewritten
  /// since the last compaction and lives in overlay_rows_ instead.
  std::vector<int32_t> overlay_index_;
  std::vector<std::vector<NodeId>> overlay_rows_;

  /// Directed link overrides, keyed by from * num_nodes + to.
  std::unordered_map<uint64_t, double> link_loss_;
};

}  // namespace snapq

#endif  // SNAPQ_NET_LINK_MODEL_H_
