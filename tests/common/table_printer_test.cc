#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace snapq {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"K", "reps"});
  t.AddRow({"1", "1.0"});
  t.AddRow({"100", "25.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| K   | reps |"), std::string::npos);
  EXPECT_NE(out.find("| 1   | 1.0  |"), std::string::npos);
  EXPECT_NE(out.find("| 100 | 25.5 |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  // Three columns rendered even for the short row.
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(os.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Num(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, SeparatorMatchesWidths) {
  TablePrinter t({"xy"});
  t.AddRow({"abcd"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("|------|"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTablePrintsHeaderOnly) {
  TablePrinter t({"col"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_NE(os.str().find("| col |"), std::string::npos);
}

}  // namespace
}  // namespace snapq
