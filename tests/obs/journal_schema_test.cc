// Golden schema test for the event journal: every JSONL event kind the
// library emits has a frozen field list (names, order, types). A failure
// here means a protocol change silently altered the journal contract
// documented in DESIGN.md §8 — update BOTH deliberately or fix the code.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/network.h"
#include "data/random_walk.h"
#include "model/cache_manager.h"
#include "obs/journal.h"
#include "snapshot/election.h"
#include "snapshot/maintenance.h"

namespace snapq {
namespace {

using Schema = std::vector<std::pair<std::string, std::string>>;

/// The frozen per-event schemas. Types are the writer-side kinds; a "num"
/// field may parse back as "int" when its value happens to be integral
/// (JSON has one number type).
const std::map<std::string, Schema>& GoldenSchemas() {
  static const std::map<std::string, Schema> golden = {
      {"election.start", {{"nodes", "int"}}},
      {"election.select", {{"node", "int"}, {"epoch", "int"}, {"rep", "int"}}},
      {"election.mode", {{"node", "int"}, {"epoch", "int"}, {"mode", "str"}}},
      {"election.done",
       {{"active", "int"},
        {"passive", "int"},
        {"undefined", "int"},
        {"spurious", "int"},
        {"avg_messages_per_node", "num"},
        {"max_messages_per_node", "num"}}},
      {"maintenance.reelect", {{"node", "int"}, {"epoch", "int"}}},
      {"maintenance.round",
       {{"round_start", "int"},
        {"snapshot_size", "int"},
        {"spurious", "int"},
        {"avg_messages_per_node", "num"}}},
      {"maintenance.resign",
       {{"node", "int"},
        {"epoch", "int"},
        {"reason", "str"},
        {"members", "int"}}},
      {"model.violation",
       {{"node", "int"},
        {"epoch", "int"},
        {"rep", "int"},
        {"reported", "num"},
        {"estimate", "num"}}},
      {"cache.evict",
       {{"node", "int"}, {"victim", "int"}, {"line_emptied", "bool"}}},
      {"query.plan",
       {{"node", "int"},
        {"use_snapshot", "bool"},
        {"passive_sleep", "bool"},
        {"matching", "int"},
        {"responders", "int"},
        {"participants", "int"},
        {"covered", "int"},
        {"estimated", "int"},
        {"max_abs_error", "num"}}},
      {"query_explain",
       {{"node", "int"},
        {"use_snapshot", "bool"},
        {"matching", "int"},
        {"covered", "int"},
        {"estimated_rows", "int"},
        {"est_participants", "int"},
        {"act_participants", "int"},
        {"est_messages", "int"},
        {"act_messages", "int"},
        {"est_energy", "num"},
        {"act_energy", "num"},
        {"tree_depth", "int"},
        {"threshold", "num"},
        {"max_abs_error", "num"}}},
      {"health.sample",
       {{"live", "int"},
        {"active", "int"},
        {"passive", "int"},
        {"undefined", "int"},
        {"spurious", "int"},
        {"coverage", "num"},
        {"violation_rate", "num"},
        {"reelection_rate", "num"},
        {"staleness", "num"}}},
      {"node_death", {{"node", "int"}, {"cause", "str"}}},
      {"accuracy_audit",
       {{"node", "int"},  // query sink, or -1 for a sweep round
        {"source", "str"},
        {"threshold", "num"},
        {"audited", "int"},
        {"violations", "int"},
        {"max_abs_error", "num"},
        {"mean_abs_error", "num"},
        {"violation_rate", "num"},
        {"budget_burn", "num"}}},
      {"slo.breach",
       {{"rule", "str"},
        {"metric", "str"},
        {"stat", "str"},
        {"observed", "num"},
        {"threshold", "num"},
        {"since", "int"}}},
      {"topo.sample",
       {{"partitions", "int"},
        {"bridges", "int"},
        {"articulation", "int"},
        {"isolated", "int"},
        {"live", "int"},
        {"weak_links", "int"},
        {"avg_degree", "num"},
        {"flap_rate", "num"},
        {"election_rate", "num"},
        {"tenure_p50", "num"}}},
  };
  return golden;
}

void ExpectType(const obs::JournalEvent& event, const std::string& key,
                const std::string& got, const std::string& want) {
  if (want == "num") {
    // Integral numbers lose their kind through JSON round-trips.
    EXPECT_TRUE(got == "num" || got == "int")
        << event.name() << "." << key << " is " << got;
  } else {
    EXPECT_EQ(got, want) << event.name() << "." << key;
  }
}

/// Order-sensitive check against a writer-side (builder) event.
void ExpectSchema(const obs::JournalEvent& event, const Schema& want) {
  const auto got = event.Fields();
  ASSERT_EQ(got.size(), want.size()) << event.name() << ": "
                                     << event.ToJsonLine();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first) << event.name();
    ExpectType(event, got[i].first, got[i].second, want[i].second);
  }
}

/// Order-insensitive check for a parsed event (JournalEvent::Parse goes
/// through a key-sorted map); emission order is asserted separately against
/// the raw line by ExpectKeyOrder.
void ExpectParsedSchema(const obs::JournalEvent& event, const Schema& want) {
  const auto got = event.Fields();
  ASSERT_EQ(got.size(), want.size()) << event.name() << ": "
                                     << event.ToJsonLine();
  for (const auto& [key, type] : want) {
    const auto it = std::find_if(
        got.begin(), got.end(),
        [&key = key](const auto& g) { return g.first == key; });
    ASSERT_NE(it, got.end()) << event.name() << " missing field " << key;
    ExpectType(event, key, it->second, type);
  }
}

/// Asserts the raw JSONL line emits the schema's keys in declared order.
void ExpectKeyOrder(const std::string& line, const Schema& want) {
  size_t prev = 0;
  for (const auto& [key, type] : want) {
    const size_t pos = line.find("\"" + key + "\":");
    ASSERT_NE(pos, std::string::npos) << key << " not in " << line;
    EXPECT_GT(pos, prev) << key << " out of order in " << line;
    prev = pos;
  }
}

/// Parses every captured line, checks each known event against its golden
/// schema, and returns the set of event names seen.
std::set<std::string> CheckLines(const std::vector<std::string>& lines) {
  std::set<std::string> seen;
  for (const std::string& line : lines) {
    const auto event = obs::JournalEvent::Parse(line);
    EXPECT_TRUE(event.has_value()) << line;
    if (!event.has_value()) continue;
    seen.insert(event->name());
    const auto it = GoldenSchemas().find(event->name());
    if (it == GoldenSchemas().end()) {
      ADD_FAILURE() << "journal emits undocumented event kind: " << line;
      continue;
    }
    ExpectParsedSchema(*event, it->second);
    ExpectKeyOrder(line, it->second);
  }
  return seen;
}

TEST(JournalSchemaTest, BuilderEmitsFieldsInOrderWithDeclaredTypes) {
  obs::JournalEvent event("test.event", 5);
  event.Node(3).Epoch(2).Num("ratio", 0.25).Str("why", "x").Bool("ok", true);
  const Schema want = {{"node", "int"},
                       {"epoch", "int"},
                       {"ratio", "num"},
                       {"why", "str"},
                       {"ok", "bool"}};
  ExpectSchema(event, want);
  EXPECT_EQ(event.ToJsonLine(),
            "{\"event\":\"test.event\",\"t\":5,\"node\":3,\"epoch\":2,"
            "\"ratio\":0.25,\"why\":\"x\",\"ok\":true}");
  const auto parsed = obs::JournalEvent::Parse(event.ToJsonLine());
  ASSERT_TRUE(parsed.has_value());
  ExpectParsedSchema(*parsed, want);
  ExpectKeyOrder(event.ToJsonLine(), want);
}

TEST(JournalSchemaTest, NetworkLifecycleEventsMatchGoldenSchemas) {
  NetworkConfig config;
  config.num_nodes = 20;
  config.snapshot.threshold = 1.0;
  config.seed = 42;
  SensorNetwork net(config);
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      net.sim().journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));

  Rng rng(7);
  RandomWalkConfig walk;
  walk.num_nodes = 20;
  walk.num_classes = 4;
  walk.horizon = 31;
  Result<Dataset> data = Dataset::Create(GenerateRandomWalk(walk, rng).series);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(net.AttachDataset(std::move(*data)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(30);
  net.RunElection(30);
  net.EnableAccuracyAudit();  // audits the query + explain rounds below
  ASSERT_TRUE(
      net.Query("SELECT avg(value) FROM sensors WHERE loc IN NORTH_HALF "
                "USE SNAPSHOT")
          .ok());
  ASSERT_TRUE(net.Explain("EXPLAIN ANALYZE SELECT avg(value) FROM sensors "
                          "WHERE loc IN NORTH_HALF USE SNAPSHOT")
                  .ok());
  // A callback is required for round measurement (and its journal event).
  net.ScheduleMaintenance(net.now() + 1, net.now() + 2, /*interval=*/10,
                          [](const MaintenanceRoundStats&) {});
  net.RunAll();
  net.SampleHealth();

  const std::set<std::string> seen = CheckLines(sink->lines());
  for (const char* required :
       {"election.start", "election.select", "election.mode", "election.done",
        "query.plan", "query_explain", "maintenance.round", "health.sample",
        "accuracy_audit"}) {
    EXPECT_TRUE(seen.count(required)) << "scenario never emitted " << required;
  }
}

TEST(JournalSchemaTest, ViolationAndReelectionEventsMatchGoldenSchemas) {
  // Three nodes in a line; teach pairwise models, elect, then drift the
  // passive nodes' values so the next heartbeat round detects a model
  // violation and re-elects (same recipe as MaintenanceTest).
  SnapshotConfig cfg;
  cfg.threshold = 1.0;
  cfg.max_wait = 4;
  cfg.heartbeat_timeout = 2;
  cfg.heartbeat_miss_limit = 1;
  Simulator sim({{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.0}}, {10.0, 10.0, 10.0},
                SimConfig{});
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      sim.journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  for (NodeId i = 0; i < 3; ++i) {
    agents.push_back(std::make_unique<SnapshotAgent>(i, &sim, cfg, 700 + i));
    agents.back()->Install();
  }
  for (NodeId i = 0; i < 3; ++i) agents[i]->SetMeasurement(10.0 + i);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      if (i == j) continue;
      const double vi = agents[i]->measurement();
      const double vj = agents[j]->measurement();
      agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
      agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
    }
  }
  RunGlobalElection(sim, agents, sim.now(), cfg);
  const SnapshotView view = CaptureSnapshot(agents);
  for (NodeId i = 0; i < 3; ++i) {
    if (view.node(i).mode == NodeMode::kPassive) {
      agents[i]->SetMeasurement(10000.0 + i);
    }
  }
  for (auto& a : agents) a->MaintenanceTick();
  sim.RunAll();

  const std::set<std::string> seen = CheckLines(sink->lines());
  EXPECT_TRUE(seen.count("model.violation"));
  EXPECT_TRUE(seen.count("maintenance.reelect"));
}

TEST(JournalSchemaTest, NodeDeathEventMatchesGoldenSchema) {
  SimConfig config;
  config.energy.initial_battery = 1.5;  // dies on the second transmission
  Simulator sim({{0.0, 0.0}, {1.0, 0.0}}, {2.0, 2.0}, config);
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      sim.journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));
  Message msg;
  msg.type = MessageType::kData;
  msg.from = 0;
  sim.Send(msg);
  sim.Send(msg);
  sim.RunAll();
  const std::set<std::string> seen = CheckLines(sink->lines());
  EXPECT_TRUE(seen.count("node_death"));
}

/// Every event name at an `Emit("...")` / `Emit(\n    "...")` site in a
/// src/ translation unit. A tiny lexical scan, not a parse: find "Emit(",
/// skip whitespace, and take a string literal when one follows (the
/// declaration `void Emit(const char*...)` has no literal and is skipped).
std::set<std::string> ScanEmittedEventNames() {
  namespace fs = std::filesystem;
  std::set<std::string> emitted;
  const fs::path src = fs::path(SNAPQ_SOURCE_DIR) / "src";
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    size_t pos = 0;
    while ((pos = text.find("Emit(", pos)) != std::string::npos) {
      pos += 5;
      const size_t quote = text.find_first_not_of(" \t\r\n", pos);
      if (quote == std::string::npos || text[quote] != '"') continue;
      const size_t end = text.find('"', quote + 1);
      if (end == std::string::npos) continue;
      emitted.insert(text.substr(quote + 1, end - quote - 1));
      pos = end + 1;
    }
  }
  return emitted;
}

TEST(JournalSchemaTest, EverySourceEmitSiteHasAGoldenSchema) {
  const std::set<std::string> emitted = ScanEmittedEventNames();
  // The scan must find the library's real emit sites — an empty or tiny
  // result means the source tree moved, not that the contract holds.
  ASSERT_GE(emitted.size(), 10u);
  for (const std::string& name : emitted) {
    EXPECT_TRUE(GoldenSchemas().count(name) != 0)
        << "src/ emits journal event '" << name
        << "' with no golden schema — freeze its field list here (and "
           "document it in DESIGN.md)";
  }
}

TEST(JournalSchemaTest, CacheEvictionEventMatchesGoldenSchema) {
  CacheConfig config;
  config.capacity_bytes = 64;  // tiny: evictions after a few neighbors
  config.policy = CachePolicy::kRoundRobin;
  obs::EventJournal journal;
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      journal.SetSink(std::make_unique<obs::MemoryJournalSink>()));
  CacheManager cache(config);
  cache.BindObservability(nullptr, &journal, /*self=*/7);
  Time t = 0;
  for (NodeId j = 0; j < 32; ++j) {
    for (int k = 0; k < 3; ++k) {
      const double x = static_cast<double>(j) + k;
      cache.Observe(j, x, 2.0 * x, ++t);
    }
  }
  const std::set<std::string> seen = CheckLines(sink->lines());
  EXPECT_TRUE(seen.count("cache.evict"));
}

}  // namespace
}  // namespace snapq
