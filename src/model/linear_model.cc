#include "model/linear_model.h"

#include <cmath>

#include "common/check.h"
#include "obs/profiler.h"

namespace snapq {

void RegressionStats::Add(double x, double y) {
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  syy_ += y * y;
}

void RegressionStats::Remove(double x, double y) {
  SNAPQ_CHECK_GT(n_, 0u);
  --n_;
  sx_ -= x;
  sy_ -= y;
  sxx_ -= x * x;
  sxy_ -= x * y;
  syy_ -= y * y;
  if (n_ == 0) {
    // Reset accumulated floating-point drift at the natural sync point.
    sx_ = sy_ = sxx_ = sxy_ = syy_ = 0.0;
  }
}

LinearModel RegressionStats::Fit() const {
  obs::ProfCount(obs::HotOp::kModelFits);
  if (n_ == 0) return LinearModel{0.0, 0.0};
  const double dn = static_cast<double>(n_);
  const double mean_y = sy_ / dn;
  if (n_ == 1) return LinearModel{0.0, mean_y};
  const double denom = dn * sxx_ - sx_ * sx_;
  // Numerical guard for (near-)constant predictors: denom is n * sum of
  // squared deviations of x; compare against the scale of the data.
  const double scale = dn * sxx_ + sx_ * sx_;
  if (denom <= 1e-12 * std::max(1.0, scale)) {
    return LinearModel{0.0, mean_y};
  }
  const double a = (dn * sxy_ - sx_ * sy_) / denom;
  const double b = (sy_ - a * sx_) / dn;
  return LinearModel{a, b};
}

double RegressionStats::SseSum(const LinearModel& m) const {
  // sum (y - a x - b)^2
  //   = syy + a^2 sxx + n b^2 - 2 a sxy - 2 b sy + 2 a b sx
  const double dn = static_cast<double>(n_);
  const double v = syy_ + m.a * m.a * sxx_ + dn * m.b * m.b -
                   2.0 * m.a * sxy_ - 2.0 * m.b * sy_ +
                   2.0 * m.a * m.b * sx_;
  // Guard tiny negative values from cancellation.
  return v < 0.0 ? 0.0 : v;
}

double RegressionStats::AverageSse(const LinearModel& m) const {
  if (n_ == 0) return 0.0;
  return SseSum(m) / static_cast<double>(n_);
}

double RegressionStats::AverageNoAnswerSse() const {
  if (n_ == 0) return 0.0;
  return syy_ / static_cast<double>(n_);
}

}  // namespace snapq
