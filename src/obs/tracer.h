// Causal trace store. The Tracer mints trace/span ids at protocol root
// causes, records a bounded in-memory tree of spans per simulation, and is
// consumed by the TraceAnalyzer (invariant verdicts) and the Perfetto
// exporter. Attach one to a Simulator with Simulator::SetTracer; the
// simulator then stamps every delivered message copy with its span so
// contexts propagate causally through handlers, scheduled callbacks, and
// re-broadcasts.
//
// Cost model: with sampling = 0 (or no tracer attached) the simulator's
// message hot path does no tracer work at all — a single branch, no heap
// allocations. With sampling on, memory is bounded by `max_spans`; once
// the budget is exhausted new spans are dropped (counted) while contexts
// keep propagating unchanged, so recorded spans never orphan.
#ifndef SNAPQ_OBS_TRACER_H_
#define SNAPQ_OBS_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "net/node_id.h"
#include "net/trace_context.h"

namespace snapq::obs {

/// The protocol events that mint new traces.
enum class TraceRootKind {
  kElection,        ///< a global election round (RunGlobalElection)
  kReelection,      ///< a local re-election with no traced cause
  kHeartbeatRound,  ///< one maintenance heartbeat round
  kQuery,           ///< a query injection (analytic or in-network)
  kViolation,       ///< a detected model violation (threshold breach)
};

const char* TraceRootKindName(TraceRootKind kind);

/// What a span represents.
enum class TraceSpanKind {
  kRoot,     ///< trace root (one per trace)
  kMessage,  ///< one radio transmission and its deliveries
  kPhase,    ///< a timed protocol phase (from obs::Span)
  kInstant,  ///< a zero-length annotation (e.g. "query.respond")
};

const char* TraceSpanKindName(TraceSpanKind kind);

/// One receiver-side outcome of a message span.
struct TraceDelivery {
  NodeId node = kInvalidNode;
  Time t = 0;
  RadioEventKind outcome = RadioEventKind::kDeliver;  // deliver/snoop/loss
};

/// One recorded span. `value` is a producer-defined scalar attribute:
/// query roots carry use_snapshot (1/0); "query.respond" instants carry 1
/// when the responder was PASSIVE at respond time (an invariant breach).
/// `link_*` records a causal edge across traces (a violation root links
/// back to the heartbeat-round span that detected it).
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  TraceSpanKind kind = TraceSpanKind::kRoot;
  TraceRootKind root_kind = TraceRootKind::kElection;  // kRoot only
  MessageType msg_type = MessageType::kData;           // kMessage only
  std::string name;
  NodeId node = kInvalidNode;
  Time start = 0;
  Time end = 0;
  int64_t value = 0;
  uint64_t link_trace_id = 0;
  uint64_t link_span_id = 0;
  std::vector<TraceDelivery> deliveries;  // kMessage only

  TraceContext context() const {
    return TraceContext{trace_id, span_id, parent_span_id};
  }
};

struct TracerConfig {
  /// Probability that a root cause mints a new trace. 1 traces everything,
  /// 0 disables the tracer entirely (enabled() == false). Values >= 1
  /// skip the sampling draw, keeping the id stream deterministic.
  double sampling = 1.0;
  /// Span budget (bounded memory). Once exhausted, further spans are
  /// dropped and counted in dropped_spans().
  size_t max_spans = 65536;
  /// Seed for the sampling draws (independent of the simulator's rng).
  uint64_t seed = 1;
};

class Tracer {
 public:
  explicit Tracer(const TracerConfig& config = {});

  bool enabled() const { return config_.sampling > 0.0; }
  const TracerConfig& config() const { return config_; }

  /// Mints a root span at time `t` (subject to sampling). Returns the root
  /// context, or an unsampled context when the draw failed, the tracer is
  /// disabled, or the span budget is gone. `link` (optional) records the
  /// already-traced cause that triggered this root.
  TraceContext StartTrace(TraceRootKind kind, NodeId node, Time t,
                          int64_t value = 0, const TraceContext& link = {});

  /// Mints a message span under `parent` (which must be sampled). Returns
  /// the context to stamp on the wire copies; falls back to `parent`
  /// itself when the span budget is exhausted, so the subtree keeps its
  /// causal attachment.
  TraceContext BeginMessageSpan(const TraceContext& parent, MessageType type,
                                NodeId from, Time t);

  /// Records a receiver-side outcome of message span `ctx` (no-op when
  /// `ctx` is unsampled or its span was dropped).
  void RecordDelivery(const TraceContext& ctx, NodeId node, Time t,
                      RadioEventKind outcome);

  /// Records a zero-length annotation span under `parent`.
  void RecordInstant(const TraceContext& parent, std::string name, NodeId node,
                     Time t, int64_t value = 0);

  /// Records a timed phase span [begin, end] under `parent` (obs::Span
  /// calls this when a trace context is attached).
  void RecordPhase(const TraceContext& parent, std::string name, Time begin,
                   Time end);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* FindSpan(uint64_t span_id) const;

  /// Trace ids in minting order.
  std::vector<uint64_t> TraceIds() const;
  /// Spans of one trace, in recording order (empty for unknown ids).
  std::vector<const TraceSpan*> SpansOfTrace(uint64_t trace_id) const;

  /// The TraceRootKind of `trace_id`'s root as an int index, or -1 when
  /// the trace is unknown (unsampled, cleared, or foreign). One hash
  /// lookup, no allocation — the energy ledger uses this to attribute
  /// drains to their causal root kind on the simulator's charge sites.
  int RootKindIndex(uint64_t trace_id) const;

  /// Traces minted so far (sampled roots only).
  uint64_t num_traces() const { return num_traces_; }
  /// Spans rejected by the max_spans budget.
  uint64_t dropped_spans() const { return dropped_; }

  /// Drops all recorded spans; id streams keep advancing so ids stay
  /// unique across a simulation's lifetime.
  void Clear();

 private:
  /// Appends if the budget allows; returns the stored span or nullptr.
  TraceSpan* Append(TraceSpan span);
  /// Extends the root span of `trace_id` to cover time `t`.
  void ExtendRoot(uint64_t trace_id, Time t);

  TracerConfig config_;
  Rng rng_;
  std::vector<TraceSpan> spans_;
  std::unordered_map<uint64_t, size_t> span_index_;   // span_id -> index
  std::unordered_map<uint64_t, size_t> root_index_;   // trace_id -> index
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  uint64_t num_traces_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_TRACER_H_
