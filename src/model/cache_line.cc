#include "model/cache_line.h"

namespace snapq {

void CacheLine::PushNewest(const ObservationPair& p) {
  pairs_.push_back(p);
  stats_.Add(p.x, p.y);
}

ObservationPair CacheLine::PopOldest() {
  SNAPQ_CHECK(!pairs_.empty());
  ObservationPair p = pairs_.front();
  pairs_.erase(pairs_.begin());
  stats_.Remove(p.x, p.y);
  return p;
}

}  // namespace snapq
