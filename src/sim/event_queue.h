// Deterministic discrete-event queue. Events at the same time fire in the
// order they were scheduled (FIFO tie-breaking via a monotonically
// increasing sequence number), which keeps whole-simulation runs
// bit-reproducible for a given seed.
//
// Events carry a small-buffer-optimized action (EventQueue::Action):
// closures up to kActionInlineBytes are stored inside the event itself,
// so the per-message delivery hot path schedules with zero heap
// allocations once the underlying heap vector has warmed up
// (tests/sim/event_queue_alloc_test.cc pins this).
#ifndef SNAPQ_SIM_EVENT_QUEUE_H_
#define SNAPQ_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/inline_function.h"
#include "net/node_id.h"

namespace snapq {

/// Priority queue of (time, seq, action) triples ordered by time then seq.
class EventQueue {
 public:
  /// Inline action capacity: sized so the simulator's pooled delivery
  /// closure (two pointers) and the traced ScheduleAt wrapper
  /// (this + TraceContext + std::function) both stay allocation-free.
  /// Bigger captures still work — they fall back to one heap allocation.
  static constexpr size_t kActionInlineBytes = 64;
  using Action = InlineFunction<kActionInlineBytes>;

  EventQueue();

  /// Schedules `action` at absolute time `t`. Requires t >= now().
  void ScheduleAt(Time t, Action action);

  /// Pre-sizes the heap's backing vector so the next `n` pending events
  /// do not reallocate it.
  void Reserve(size_t n);

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool RunNext();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(Time t);

  /// Runs to exhaustion.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  Time now() const { return now_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// priority_queue keeps its container protected; exposing it lets
  /// Reserve() pre-size the backing vector (capacity growth is the only
  /// allocation the event hot path can perform).
  struct Heap : std::priority_queue<Event, std::vector<Event>, Later> {
    using std::priority_queue<Event, std::vector<Event>, Later>::c;
  };

  Heap heap_;
  uint64_t next_seq_ = 0;
  Time now_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_SIM_EVENT_QUEUE_H_
