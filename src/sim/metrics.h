// Simulation-wide counters: message traffic by type, energy, cache
// activity. Experiments read these to report the paper's metrics (messages
// per node, nodes participating in a query, etc.).
//
// Metrics is a thin façade over an obs::MetricRegistry: every count lands
// in a named registry counter ("net.sent.invitation", "net.lost", ...), so
// the same numbers show up in the registry's JSON/CSV exports and bench
// sidecar files. The façade caches the counter handles at construction —
// a count is one pointer-indirect increment, same order of cost as the
// plain arrays it replaces.
#ifndef SNAPQ_SIM_METRICS_H_
#define SNAPQ_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "net/message.h"
#include "obs/metric_registry.h"

namespace snapq {

/// Value capture of every Metrics counter, for phase accounting: take one
/// before a phase, another after (or use Metrics::Delta) and subtract.
struct MetricsSnapshot {
  std::array<uint64_t, kNumMessageTypes> sent{};
  std::array<uint64_t, kNumMessageTypes> delivered{};
  std::array<uint64_t, kNumMessageTypes> lost{};
  std::array<uint64_t, kNumMessageTypes> snooped{};
  uint64_t total_sent = 0;
  uint64_t total_delivered = 0;
  uint64_t total_lost = 0;
  uint64_t cache_ops = 0;
  uint64_t node_deaths = 0;
};

/// Plain counters; reset between experiment phases via snapshots/deltas.
class Metrics {
 public:
  /// Standalone metrics backed by a private registry (unit tests,
  /// ad-hoc accounting).
  Metrics();
  /// Façade over `registry` (the simulator's). Not owned; must outlive
  /// this object.
  explicit Metrics(obs::MetricRegistry* registry);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void CountSent(MessageType type) {
    sent_[Index(type)]->Inc();
    total_sent_->Inc();
  }
  void CountDelivered(MessageType type) {
    delivered_[Index(type)]->Inc();
    total_delivered_->Inc();
  }
  void CountLost(MessageType type) {
    lost_[Index(type)]->Inc();
    total_lost_->Inc();
  }
  void CountSnooped(MessageType type) { snooped_[Index(type)]->Inc(); }
  void CountCacheOp() { cache_ops_->Inc(); }
  void CountNodeDeath() { node_deaths_->Inc(); }

  uint64_t sent(MessageType type) const {
    return sent_[Index(type)]->value();
  }
  uint64_t delivered(MessageType type) const {
    return delivered_[Index(type)]->value();
  }
  uint64_t lost(MessageType type) const {
    return lost_[Index(type)]->value();
  }
  uint64_t snooped(MessageType type) const {
    return snooped_[Index(type)]->value();
  }

  uint64_t total_sent() const { return total_sent_->value(); }
  uint64_t total_delivered() const { return total_delivered_->value(); }
  uint64_t total_lost() const { return total_lost_->value(); }
  uint64_t cache_ops() const { return cache_ops_->value(); }
  uint64_t node_deaths() const { return node_deaths_->value(); }

  /// Captures every counter's current value.
  MetricsSnapshot Snapshot() const;
  /// Current values minus `since` — the traffic of one experiment phase,
  /// without resetting anything.
  MetricsSnapshot Delta(const MetricsSnapshot& since) const;

  /// Zeroes the counters (registrations stay).
  void Reset();

  /// Multi-line human-readable dump (used by traces and examples).
  std::string ToString() const;

  /// The backing registry (the simulator's, or the private one).
  obs::MetricRegistry& registry() { return *registry_; }
  const obs::MetricRegistry& registry() const { return *registry_; }

 private:
  static size_t Index(MessageType t) { return static_cast<size_t>(t); }
  void BindInstruments();

  std::unique_ptr<obs::MetricRegistry> owned_;  // null when external
  obs::MetricRegistry* registry_;
  std::array<obs::Counter*, kNumMessageTypes> sent_{};
  std::array<obs::Counter*, kNumMessageTypes> delivered_{};
  std::array<obs::Counter*, kNumMessageTypes> lost_{};
  std::array<obs::Counter*, kNumMessageTypes> snooped_{};
  obs::Counter* total_sent_ = nullptr;
  obs::Counter* total_delivered_ = nullptr;
  obs::Counter* total_lost_ = nullptr;
  obs::Counter* cache_ops_ = nullptr;
  obs::Counter* node_deaths_ = nullptr;
};

}  // namespace snapq

#endif  // SNAPQ_SIM_METRICS_H_
