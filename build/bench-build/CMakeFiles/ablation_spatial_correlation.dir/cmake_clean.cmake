file(REMOVE_RECURSE
  "../bench/ablation_spatial_correlation"
  "../bench/ablation_spatial_correlation.pdb"
  "CMakeFiles/ablation_spatial_correlation.dir/ablation_spatial_correlation.cc.o"
  "CMakeFiles/ablation_spatial_correlation.dir/ablation_spatial_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spatial_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
