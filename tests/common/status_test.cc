#include "common/status.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThenPropagates() {
  SNAPQ_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::Ok();
}

TEST(ReturnIfErrorTest, PropagatesFailure) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kIoError);
}

Status SucceedsThrough() {
  SNAPQ_RETURN_IF_ERROR(Status::Ok());
  return Status::NotFound("reached end");
}

TEST(ReturnIfErrorTest, PassesOkThrough) {
  EXPECT_EQ(SucceedsThrough().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace snapq
