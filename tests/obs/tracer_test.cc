// Unit tests for the causal trace store: root minting, span parenting,
// sampling, the bounded-memory drop policy, and id-stream stability.
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "net/message.h"

namespace snapq::obs {
namespace {

TracerConfig Config(double sampling, size_t max_spans = 65536) {
  TracerConfig config;
  config.sampling = sampling;
  config.max_spans = max_spans;
  return config;
}

TEST(TracerTest, SamplingZeroDisablesEverything) {
  Tracer tracer(Config(0.0));
  EXPECT_FALSE(tracer.enabled());
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 10);
  EXPECT_FALSE(root.sampled());
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.num_traces(), 0u);
}

TEST(TracerTest, StartTraceMintsRootSpan) {
  Tracer tracer(Config(1.0));
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kQuery, 5, 42, /*value=*/1);
  ASSERT_TRUE(root.sampled());
  EXPECT_EQ(root.parent_span_id, 0u);
  ASSERT_EQ(tracer.spans().size(), 1u);
  const TraceSpan& span = tracer.spans().front();
  EXPECT_EQ(span.kind, TraceSpanKind::kRoot);
  EXPECT_EQ(span.root_kind, TraceRootKind::kQuery);
  EXPECT_EQ(span.name, "query");
  EXPECT_EQ(span.node, 5u);
  EXPECT_EQ(span.start, 42);
  EXPECT_EQ(span.value, 1);
  EXPECT_EQ(tracer.num_traces(), 1u);
  EXPECT_EQ(tracer.TraceIds(), std::vector<uint64_t>{root.trace_id});
}

TEST(TracerTest, RootRecordsCausalLink) {
  Tracer tracer(Config(1.0));
  const TraceContext cause =
      tracer.StartTrace(TraceRootKind::kHeartbeatRound, kInvalidNode, 1);
  const TraceContext effect =
      tracer.StartTrace(TraceRootKind::kViolation, 3, 2, 0, cause);
  ASSERT_TRUE(effect.sampled());
  const TraceSpan* root = tracer.FindSpan(effect.span_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->link_trace_id, cause.trace_id);
  EXPECT_EQ(root->link_span_id, cause.span_id);
}

TEST(TracerTest, MessageSpanChainsUnderParent) {
  Tracer tracer(Config(1.0));
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const TraceContext hop1 =
      tracer.BeginMessageSpan(root, MessageType::kInvitation, 1, 0);
  const TraceContext hop2 =
      tracer.BeginMessageSpan(hop1, MessageType::kInvitation, 2, 1);
  ASSERT_TRUE(hop2.sampled());
  EXPECT_EQ(hop1.trace_id, root.trace_id);
  EXPECT_EQ(hop1.parent_span_id, root.span_id);
  EXPECT_EQ(hop2.parent_span_id, hop1.span_id);
  const TraceSpan* span = tracer.FindSpan(hop2.span_id);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->kind, TraceSpanKind::kMessage);
  EXPECT_EQ(span->msg_type, MessageType::kInvitation);
  EXPECT_EQ(span->node, 2u);
}

TEST(TracerTest, UnsampledParentYieldsNoMessageSpan) {
  Tracer tracer(Config(1.0));
  const TraceContext ctx =
      tracer.BeginMessageSpan(TraceContext{}, MessageType::kData, 0, 0);
  EXPECT_FALSE(ctx.sampled());
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TracerTest, RecordDeliveryExtendsSpanAndRoot) {
  Tracer tracer(Config(1.0));
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const TraceContext msg =
      tracer.BeginMessageSpan(root, MessageType::kData, 1, 0);
  tracer.RecordDelivery(msg, 2, 3, RadioEventKind::kDeliver);
  tracer.RecordDelivery(msg, 3, 4, RadioEventKind::kLoss);
  const TraceSpan* span = tracer.FindSpan(msg.span_id);
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(span->deliveries.size(), 2u);
  EXPECT_EQ(span->deliveries[0].node, 2u);
  EXPECT_EQ(span->deliveries[0].outcome, RadioEventKind::kDeliver);
  EXPECT_EQ(span->deliveries[1].outcome, RadioEventKind::kLoss);
  EXPECT_EQ(span->end, 4);
  // Root coverage extends to the latest delivery time.
  EXPECT_EQ(tracer.FindSpan(root.span_id)->end, 4);
}

TEST(TracerTest, InstantAndPhaseSpans) {
  Tracer tracer(Config(1.0));
  const TraceContext root = tracer.StartTrace(TraceRootKind::kQuery, 0, 5, 1);
  tracer.RecordInstant(root, "query.respond", 7, 6, /*value=*/1);
  tracer.RecordPhase(root, "query.exec", 5, 9);
  ASSERT_EQ(tracer.spans().size(), 3u);
  const TraceSpan& instant = tracer.spans()[1];
  EXPECT_EQ(instant.kind, TraceSpanKind::kInstant);
  EXPECT_EQ(instant.name, "query.respond");
  EXPECT_EQ(instant.node, 7u);
  EXPECT_EQ(instant.value, 1);
  const TraceSpan& phase = tracer.spans()[2];
  EXPECT_EQ(phase.kind, TraceSpanKind::kPhase);
  EXPECT_EQ(phase.start, 5);
  EXPECT_EQ(phase.end, 9);
  EXPECT_EQ(tracer.FindSpan(root.span_id)->end, 9);
}

TEST(TracerTest, BudgetExhaustionDropsSpansButKeepsAttachment) {
  Tracer tracer(Config(1.0, /*max_spans=*/2));
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const TraceContext kept =
      tracer.BeginMessageSpan(root, MessageType::kData, 0, 0);
  EXPECT_NE(kept.span_id, root.span_id);
  // Budget gone: the next message span falls back to its parent context,
  // so downstream spans would still attach to a *recorded* ancestor.
  const TraceContext dropped =
      tracer.BeginMessageSpan(kept, MessageType::kData, 1, 1);
  EXPECT_EQ(dropped.span_id, kept.span_id);
  EXPECT_EQ(dropped.trace_id, kept.trace_id);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  // Dropped roots mean the whole trace is unsampled.
  const TraceContext root2 =
      tracer.StartTrace(TraceRootKind::kQuery, 0, 2);
  EXPECT_FALSE(root2.sampled());
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(TracerTest, PartialSamplingKeepsSomeTraces) {
  Tracer tracer(Config(0.5));
  int sampled = 0;
  for (int i = 0; i < 200; ++i) {
    if (tracer.StartTrace(TraceRootKind::kQuery, 0, i).sampled()) ++sampled;
  }
  EXPECT_GT(sampled, 0);
  EXPECT_LT(sampled, 200);
  EXPECT_EQ(tracer.num_traces(), static_cast<uint64_t>(sampled));
}

TEST(TracerTest, ClearKeepsIdStreamsAdvancing) {
  Tracer tracer(Config(1.0));
  const TraceContext first =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  const TraceContext second =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 1);
  EXPECT_GT(second.trace_id, first.trace_id);
  EXPECT_GT(second.span_id, first.span_id);
}

TEST(TracerTest, SpansOfTraceFiltersByTraceId) {
  Tracer tracer(Config(1.0));
  const TraceContext a =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const TraceContext b = tracer.StartTrace(TraceRootKind::kQuery, 0, 0);
  tracer.BeginMessageSpan(a, MessageType::kData, 0, 1);
  EXPECT_EQ(tracer.SpansOfTrace(a.trace_id).size(), 2u);
  EXPECT_EQ(tracer.SpansOfTrace(b.trace_id).size(), 1u);
  EXPECT_TRUE(tracer.SpansOfTrace(999).empty());
  EXPECT_EQ(tracer.FindSpan(12345), nullptr);
}

}  // namespace
}  // namespace snapq::obs
