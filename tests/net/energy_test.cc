#include "net/energy.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(BatteryTest, StartsWithCapacity) {
  Battery b(500.0);
  EXPECT_TRUE(b.alive());
  EXPECT_DOUBLE_EQ(b.remaining(), 500.0);
}

TEST(BatteryTest, DefaultIsDead) {
  Battery b;
  EXPECT_FALSE(b.alive());
}

TEST(BatteryTest, ConsumeDecrements) {
  Battery b(10.0);
  double applied = -1.0;
  EXPECT_EQ(b.Consume(3.0, &applied), DrainOutcome::kOk);
  EXPECT_DOUBLE_EQ(applied, 3.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 7.0);
}

TEST(BatteryTest, ExactlyDrainingLastUnitSucceedsThenDead) {
  // The paper's battery of "500 transmissions" allows exactly 500 sends:
  // the final transmission applies in full (the node dies transmitting).
  Battery b(2.0);
  double applied = -1.0;
  EXPECT_EQ(b.Consume(1.0, &applied), DrainOutcome::kOk);
  EXPECT_DOUBLE_EQ(applied, 1.0);
  EXPECT_EQ(b.Consume(1.0, &applied), DrainOutcome::kDiedNow);
  EXPECT_DOUBLE_EQ(applied, 1.0);  // the full cost was applied
  EXPECT_FALSE(b.alive());
  EXPECT_EQ(b.Consume(1.0, &applied), DrainOutcome::kAlreadyDead);
  EXPECT_DOUBLE_EQ(applied, 0.0);  // nothing left to drain
}

TEST(BatteryTest, OverdraftKillsAndAppliesOnlyTheRemainder) {
  Battery b(0.5);
  double applied = -1.0;
  EXPECT_EQ(b.Consume(1.0, &applied), DrainOutcome::kDiedNow);
  EXPECT_DOUBLE_EQ(applied, 0.5);  // only the remaining charge drains
  EXPECT_FALSE(b.alive());
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
}

TEST(BatteryTest, AppliedDrainsSumToCapacityExactly) {
  // The out-param contract the energy ledger's conservation invariant
  // rests on: summing `applied` across any drain sequence reproduces
  // initial - remaining() exactly, overdrafts and dead calls included.
  Battery b(2.5);
  double total = 0.0;
  double applied = 0.0;
  b.Consume(1.0, &applied);
  total += applied;
  b.Consume(2.0, &applied);  // overdraft: applies only 1.5
  total += applied;
  b.Consume(1.0, &applied);  // already dead: applies 0
  total += applied;
  EXPECT_EQ(total, 2.5);  // bitwise, no epsilon
  EXPECT_EQ(b.remaining(), 0.0);
}

TEST(BatteryTest, ConsumeWithoutOutParamStillWorks) {
  Battery b(1.0);
  EXPECT_EQ(b.Consume(0.25), DrainOutcome::kOk);
  EXPECT_DOUBLE_EQ(b.remaining(), 0.75);
}

TEST(BatteryTest, KillForcesDeath) {
  Battery b(100.0);
  b.Kill();
  EXPECT_FALSE(b.alive());
  EXPECT_EQ(b.Consume(0.1), DrainOutcome::kAlreadyDead);
}

TEST(BatteryTest, InfiniteCapacityNeverDies) {
  Battery b(EnergyModel::Unlimited().initial_battery);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(b.Consume(1000.0), DrainOutcome::kOk);
  }
  EXPECT_TRUE(b.alive());
}

TEST(EnergyModelTest, PaperDefaults) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_cost, 1.0);
  EXPECT_DOUBLE_EQ(m.cache_op_cost, 0.1);  // one tenth of a transmission
  EXPECT_DOUBLE_EQ(m.initial_battery, 500.0);
  EXPECT_FALSE(m.unlimited());
}

TEST(EnergyModelTest, UnlimitedIsDetected) {
  EXPECT_TRUE(EnergyModel::Unlimited().unlimited());
}

TEST(BatteryTest, ZeroCostConsumeKeepsAlive) {
  Battery b(1.0);
  double applied = -1.0;
  EXPECT_EQ(b.Consume(0.0, &applied), DrainOutcome::kOk);
  EXPECT_DOUBLE_EQ(applied, 0.0);
  EXPECT_TRUE(b.alive());
}

}  // namespace
}  // namespace snapq
