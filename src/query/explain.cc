#include "query/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "model/error_metric.h"
#include "obs/accuracy.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "snapshot/election.h"

namespace snapq {
namespace {

/// The unbounded fallback region — must match Execute()'s.
constexpr Rect kEverywhere{-1e300, -1e300, 1e300, 1e300};

ExplainCost CostFrom(const QueryProvenance& prov) {
  ExplainCost cost;
  cost.participants = prov.participants;
  cost.responders = prov.responders;
  cost.covered = prov.claims.size();
  cost.messages = prov.messages;
  cost.energy = prov.energy;
  cost.tree_depth = prov.tree_depth;
  return cost;
}

/// Builds the per-node provenance rows from one round's claims. The claim
/// epoch is normalized for display: self-reports carry the internal
/// kQueryClaimSelfEpoch sentinel, which reads back as the node's own
/// election epoch.
std::vector<ExplainNodeRow> BuildRows(
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents,
    const Rect& region, const LinkModel& links, const QueryProvenance& prov,
    const ErrorMetric& metric, double threshold) {
  std::vector<ExplainNodeRow> rows;
  rows.reserve(prov.matching_nodes);
  for (NodeId j = 0; j < agents.size(); ++j) {
    if (!region.Contains(links.position(j))) continue;
    ExplainNodeRow row;
    row.node = j;
    const auto it = prov.claims.find(j);
    if (it == prov.claims.end()) {
      rows.push_back(row);
      continue;
    }
    const QueryClaim& claim = it->second;
    row.reporter = claim.reporter;
    row.covered = true;
    row.estimated = claim.estimated;
    row.epoch = claim.epoch == kQueryClaimSelfEpoch ? agents[j]->epoch()
                                                    : claim.epoch;
    row.value = claim.value;
    if (claim.estimated) {
      const double truth = agents[j]->measurement();
      row.model_error = claim.value - truth;
      row.model_distance = metric.Distance(truth, claim.value);
      row.within_threshold = row.model_distance <= threshold;
    }
    if (claim.reporter < prov.depth.size()) {
      row.depth = prov.depth[claim.reporter];
    }
    rows.push_back(row);
  }
  return rows;
}

std::string Count(size_t v) {
  return StrFormat("%zu", v);
}

std::string YesNo(bool b) { return b ? "yes" : "no"; }

}  // namespace

size_t ExplainReport::EstimatedRows() const {
  size_t n = 0;
  for (const ExplainNodeRow& row : rows) {
    if (row.estimated) ++n;
  }
  return n;
}

double ExplainReport::MaxAbsModelError() const {
  double max_err = 0.0;
  for (const ExplainNodeRow& row : rows) {
    if (row.model_error.has_value()) {
      max_err = std::max(max_err, std::abs(*row.model_error));
    }
  }
  return max_err;
}

std::string ExplainReport::ToString() const {
  std::ostringstream os;
  os << (analyze ? "EXPLAIN ANALYZE" : "EXPLAIN") << "\n";
  os << "query: " << sql << "\n";

  os << "predicate: " << region_source;
  if (region == kEverywhere) {
    os << " -> everywhere";
  } else {
    os << StrFormat(" -> rect [%.2f, %.2f] x [%.2f, %.2f]", region.min_x,
                    region.min_y, region.max_x, region.max_y);
  }
  os << StrFormat("; %zu of %zu nodes match\n", matching_nodes, num_nodes);

  os << "strategy: "
     << (use_snapshot
             ? "snapshot fan-out (representatives answer for members)"
             : "regular fan-out (every matching node responds)")
     << "\n";
  os << StrFormat(
      "  sink=%zu  favor_representatives=%s  passive_nodes_sleep=%s  "
      "charge_energy=%s\n",
      static_cast<size_t>(sink), YesNo(favor_representatives).c_str(),
      YesNo(passive_nodes_sleep).c_str(), YesNo(charge_energy).c_str());

  os << StrFormat("snapshot: %zu active, %zu passive, %zu spurious", active,
                  passive, spurious);
  os << StrFormat("; threshold T=%g (%s%s)\n", threshold, metric.c_str(),
                  threshold_overridden ? ", per-query override" : "");
  os << StrFormat("routing: %zu/%zu nodes reachable from the sink\n",
                  reachable_nodes, num_nodes);
  os << "\n";

  {
    std::vector<std::string> header{"cost", "estimated"};
    if (actual.has_value()) header.push_back("actual");
    TablePrinter t(std::move(header));
    auto add = [&](const char* label, const std::string& est,
                   const std::string& act) {
      std::vector<std::string> row{label, est};
      if (actual.has_value()) row.push_back(act);
      t.AddRow(std::move(row));
    };
    const ExplainCost act = actual.value_or(ExplainCost{});
    add("responders", Count(estimated.responders), Count(act.responders));
    add("participants", Count(estimated.participants),
        Count(act.participants));
    add("messages", Count(estimated.messages), Count(act.messages));
    add("energy", TablePrinter::Num(estimated.energy, 3),
        TablePrinter::Num(act.energy, 3));
    add("tree depth", StrFormat("%d", estimated.tree_depth),
        StrFormat("%d", act.tree_depth));
    add("covered nodes", Count(estimated.covered), Count(act.covered));
    t.Print(os);
    os << "\n";
  }

  if (energy.has_value()) {
    os << StrFormat("energy by cause (ledger): total %s J |",
                    TablePrinter::Num(energy->total, 3).c_str());
    for (size_t c = 0; c < obs::kNumEnergyCauses; ++c) {
      if (energy->by_cause[c] == 0.0) continue;
      os << StrFormat(
          " %s=%s", obs::EnergyCauseName(static_cast<obs::EnergyCause>(c)),
          TablePrinter::Num(energy->by_cause[c], 3).c_str());
    }
    os << "\n\n";
  }

  os << StrFormat("provenance (%zu matching nodes):\n", matching_nodes);
  {
    // The audited columns (the auditor's ground-truth history per node)
    // appear only when a round ran with accuracy auditing enabled, so
    // un-audited reports keep their frozen layout.
    const bool any_audit =
        std::any_of(rows.begin(), rows.end(), [](const ExplainNodeRow& row) {
          return row.audited_mean_error.has_value();
        });
    std::vector<std::string> header{"node",  "reporter", "via",
                                    "epoch", "value",    "error",
                                    "d(x,x^)", "<=T"};
    if (any_audit) {
      header.push_back("audit|e|");
      header.push_back("audit n");
    }
    header.push_back("depth");
    TablePrinter t(std::move(header));
    for (const ExplainNodeRow& row : rows) {
      if (!row.covered) {
        // Uncovered rows stay sparse; TablePrinter pads short rows.
        t.AddRow({StrFormat("%zu", static_cast<size_t>(row.node)), "--",
                  "uncovered"});
        continue;
      }
      std::vector<std::string> cells{
          StrFormat("%zu", static_cast<size_t>(row.node)),
          StrFormat("%zu", static_cast<size_t>(row.reporter)),
          row.estimated ? "estimate" : "self",
          StrFormat("%lld", static_cast<long long>(row.epoch)),
          TablePrinter::Num(row.value, 2),
          row.model_error.has_value() ? TablePrinter::Num(*row.model_error, 2)
                                      : std::string(),
          TablePrinter::Num(row.model_distance, 3),
          YesNo(row.within_threshold)};
      if (any_audit) {
        if (row.audited_mean_error.has_value()) {
          cells.push_back(TablePrinter::Num(*row.audited_mean_error, 3));
          cells.push_back(StrFormat(
              "%llu", static_cast<unsigned long long>(row.audited_count)));
        } else {
          cells.push_back("");
          cells.push_back("");
        }
      }
      cells.push_back(StrFormat("%d", row.depth));
      t.AddRow(std::move(cells));
    }
    t.Print(os);
  }

  if (result.has_value()) {
    os << "\n";
    if (result->aggregate.has_value()) {
      os << StrFormat("answer: %g", *result->aggregate);
      if (result->true_aggregate.has_value()) {
        os << StrFormat(" (ground truth %g)", *result->true_aggregate);
      }
    } else {
      os << StrFormat("answer: %zu rows", result->rows.size());
    }
    os << StrFormat("  coverage %zu/%zu (%.0f%%)\n", result->covered_nodes,
                    result->matching_nodes, result->coverage * 100.0);
  }
  return os.str();
}

Result<ExplainReport> ExplainQuery(QueryExecutor& executor,
                                   const QuerySpec& spec,
                                   const ExecutionOptions& options) {
  SNAPQ_RETURN_IF_ERROR(ValidateColumns(spec, executor.catalog()));
  Result<Rect> region = ResolveRegion(spec, executor.catalog(), kEverywhere);
  if (!region.ok()) return region.status();

  const auto& agents = executor.agents();
  Simulator& sim = executor.sim();

  ExplainReport report;
  {
    // Normalize: the report's `sql` is the statement without the prefix.
    QuerySpec bare = spec;
    bare.explain = ExplainMode::kNone;
    report.sql = bare.ToString();
  }
  report.analyze = spec.explain == ExplainMode::kAnalyze;
  if (spec.region_name.has_value()) {
    report.region_source = "region " + ToUpper(*spec.region_name);
  } else if (spec.region.has_value()) {
    report.region_source = "literal RECT";
  } else {
    report.region_source = "default (everywhere)";
  }
  report.region = *region;
  report.use_snapshot = spec.use_snapshot;
  report.favor_representatives = options.favor_representatives;
  report.passive_nodes_sleep = options.passive_nodes_sleep;
  report.charge_energy = options.charge_energy;
  report.sink = options.sink;
  report.num_nodes = agents.size();

  const SnapshotView snapshot = CaptureSnapshot(agents);
  report.active = snapshot.CountActive();
  report.passive = snapshot.CountPassive();
  report.spurious = snapshot.CountSpurious();

  // The snapshot config is shared across the deployment; an empty network
  // falls back to defaults so the report stays well-formed.
  const SnapshotConfig config =
      agents.empty() ? SnapshotConfig{} : agents.front()->config();
  report.threshold = spec.snapshot_threshold.value_or(config.threshold);
  report.threshold_overridden = spec.snapshot_threshold.has_value();
  report.metric = ErrorMetricKindName(config.metric.kind());

  // Plan: side-effect free — nothing transmitted, charged or journaled.
  ExecutionOptions plan_options = options;
  plan_options.provenance = nullptr;
  const QueryProvenance plan =
      executor.PlanRegion(*region, spec.use_snapshot, plan_options);
  report.matching_nodes = plan.matching_nodes;
  report.reachable_nodes = plan.reachable_nodes;
  report.estimated = CostFrom(plan);

  obs::MetricRegistry& reg = sim.registry();
  reg.GetCounter("explain.plans")->Inc();

  const QueryProvenance* rows_source = &plan;
  QueryProvenance actual;
  if (report.analyze) {
    ExecutionOptions run_options = options;
    run_options.provenance = &actual;
    // The audited round is judged against the same effective T the report
    // displays (the per-query override when present).
    run_options.audit_threshold = report.threshold;
    // With an energy ledger attached, bracket the execution with per-cause
    // totals: the delta is this query's own drain — protocol messages it
    // induced included, not just the executor's aggregate charge.
    obs::EnergyLedger* ledger = sim.energy_ledger();
    std::array<double, obs::kNumEnergyCauses> before{};
    if (ledger != nullptr) {
      for (size_t c = 0; c < obs::kNumEnergyCauses; ++c) {
        before[c] = ledger->CauseJoules(static_cast<obs::EnergyCause>(c));
      }
    }
    report.result = executor.ExecuteRegion(*region, spec.use_snapshot,
                                           spec.TheAggregate(), run_options);
    if (ledger != nullptr) {
      ExplainEnergyBreakdown breakdown;
      for (size_t c = 0; c < obs::kNumEnergyCauses; ++c) {
        breakdown.by_cause[c] =
            ledger->CauseJoules(static_cast<obs::EnergyCause>(c)) - before[c];
        breakdown.total += breakdown.by_cause[c];
      }
      report.energy = breakdown;
    }
    report.actual = CostFrom(actual);
    rows_source = &actual;
  }

  report.rows =
      BuildRows(agents, *region, sim.links(), *rows_source, config.metric,
                report.threshold);

  if (options.audit != nullptr) {
    // Join the auditor's per-node ground-truth history onto the rows: the
    // "audited actual error" column next to the model's claimed error.
    // Under ANALYZE the execution above already audited this round.
    for (ExplainNodeRow& row : report.rows) {
      const obs::AuditNodeStats stats = options.audit->NodeStats(row.node);
      if (stats.audited == 0) continue;
      row.audited_count = stats.audited;
      row.audited_mean_error = stats.mean_abs_error;
    }
  }

  if (report.analyze) {
    reg.GetCounter("explain.analyze.runs")->Inc();
    const double est_p = static_cast<double>(report.estimated.participants);
    const double act_p = static_cast<double>(report.actual->participants);
    const std::vector<double> delta_buckets{0, 1, 2, 5, 10, 20, 50};
    reg.GetHistogram("explain.participant_delta", delta_buckets)
        ->Observe(std::abs(est_p - act_p));
    const std::vector<double> pct_buckets{0, 1, 2, 5, 10, 25, 50, 100};
    const double pct =
        act_p == 0.0 ? (est_p == 0.0 ? 0.0 : 100.0)
                     : std::abs(est_p - act_p) / act_p * 100.0;
    reg.GetHistogram("explain.estimate_error_pct", pct_buckets)->Observe(pct);

    const double max_abs_error = report.MaxAbsModelError();
    const size_t estimated_rows = report.EstimatedRows();
    sim.journal().Emit(
        "query_explain", sim.now(), [&](obs::JournalEvent& e) {
          e.Node(report.sink)
              .Bool("use_snapshot", report.use_snapshot)
              .Int("matching", static_cast<int64_t>(report.matching_nodes))
              .Int("covered", static_cast<int64_t>(report.actual->covered))
              .Int("estimated_rows", static_cast<int64_t>(estimated_rows))
              .Int("est_participants",
                   static_cast<int64_t>(report.estimated.participants))
              .Int("act_participants",
                   static_cast<int64_t>(report.actual->participants))
              .Int("est_messages",
                   static_cast<int64_t>(report.estimated.messages))
              .Int("act_messages",
                   static_cast<int64_t>(report.actual->messages))
              .Num("est_energy", report.estimated.energy)
              .Num("act_energy", report.actual->energy)
              .Int("tree_depth", report.actual->tree_depth)
              .Num("threshold", report.threshold)
              .Num("max_abs_error", max_abs_error);
        });
  }
  return report;
}

Result<ExplainReport> ExplainSql(QueryExecutor& executor,
                                 const std::string& sql,
                                 const ExecutionOptions& options) {
  Result<QuerySpec> spec = ParseQuery(sql);
  if (!spec.ok()) return spec.status();
  return ExplainQuery(executor, *spec, options);
}

}  // namespace snapq
