// Satellite regression pinning the paper's Figure 10 headline at library
// level: under a finite battery and continuous random spatial queries,
// snapshot queries outlive regular ones. The run is compressed from the
// benchmark's 9,000 ticks by raising the query pressure (12 queries per
// tick against the paper's 500-transmission battery) rather than by
// shrinking the battery — a smaller battery would let the snapshot run's
// fixed election cost dominate and invert the comparison. The shape is
// the paper's: the regular network drains uniformly and collapses below
// 20% coverage by the end of the run, while the snapshot network's area
// under the coverage curve stays strictly larger. Deterministic seed —
// this is a regression gate, not a statistics experiment.
#include <gtest/gtest.h>

#include <cmath>

#include "api/network.h"
#include "data/random_walk.h"
#include "query/executor.h"

namespace snapq {
namespace {

constexpr uint64_t kSeed = 3;
constexpr Time kQueryStart = 90;
constexpr Time kHorizon = 900;
constexpr int kQueriesPerTick = 12;  // compresses 9,000 ticks into ~900
// The maintenance cadence compresses with the time axis: the benchmark's
// 100-tick rounds become ~10, or representatives would die between
// rounds faster than the failover can replace them.
constexpr Time kMaintenanceInterval = 10;

struct LifetimeOutcome {
  double auc = 0.0;             // mean coverage over every answered query
  double final_coverage = 0.0;  // mean over the last sixth of the run
  uint64_t deaths = 0;
};

LifetimeOutcome RunLifetime(bool use_snapshot) {
  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = 0.7;
  config.energy = EnergyModel();  // the paper's 500-transmission battery
  config.snapshot.threshold = 1.0;
  config.snapshot.heartbeat_miss_limit = 1;
  config.seed = kSeed;
  SensorNetwork net(config);

  Rng data_rng = Rng(kSeed).SplitNamed("data");
  RandomWalkConfig walk;
  walk.num_nodes = 100;
  walk.num_classes = 1;
  walk.horizon = static_cast<size_t>(kHorizon) + 1;
  Result<Dataset> dataset =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());

  if (use_snapshot) {
    net.ScheduleTrainingBroadcasts(0, 10);
    net.RunUntil(20);
    net.RunElection(20);
    net.ScheduleMaintenance(net.now() + kMaintenanceInterval, kHorizon,
                            kMaintenanceInterval);
  }

  LifetimeOutcome outcome;
  size_t answered = 0;
  size_t final_answered = 0;
  const Time final_window = kHorizon - (kHorizon - kQueryStart) / 6;
  Rng query_rng = Rng(kSeed).SplitNamed("queries");
  const double w = std::sqrt(0.1);
  for (Time t = kQueryStart; t < kHorizon; ++t) {
    net.RunUntil(t);
    for (int q = 0; q < kQueriesPerTick; ++q) {
      ExecutionOptions options;
      NodeId sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
      for (int tries = 0; tries < 200 && !net.sim().alive(sink); ++tries) {
        sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
      }
      options.sink = sink;
      options.charge_energy = true;
      const Point center{query_rng.NextDouble(), query_rng.NextDouble()};
      const QueryResult result = net.executor().ExecuteRegion(
          Rect::CenteredSquare(center, w), use_snapshot,
          AggregateFunction::kSum, options);
      if (result.matching_nodes == 0) continue;
      outcome.auc += result.coverage;
      ++answered;
      if (t >= final_window) {
        outcome.final_coverage += result.coverage;
        ++final_answered;
      }
    }
  }
  outcome.auc /= static_cast<double>(answered > 0 ? answered : 1);
  outcome.final_coverage /=
      static_cast<double>(final_answered > 0 ? final_answered : 1);
  outcome.deaths = net.sim().metrics().node_deaths();
  return outcome;
}

TEST(LifetimeRegressionTest, SnapshotQueriesOutliveRegularQueries) {
  const LifetimeOutcome regular = RunLifetime(/*use_snapshot=*/false);
  const LifetimeOutcome snapshot = RunLifetime(/*use_snapshot=*/true);

  // Figure 10's headline: the snapshot network preserves strictly more
  // coverage over the run than the regular network.
  EXPECT_GT(snapshot.auc, regular.auc);

  // The regular network's uniform drain collapses it by end-of-horizon
  // (the paper's "falls under 20%" knee).
  EXPECT_LT(regular.final_coverage, 0.2);
  EXPECT_GT(regular.deaths, 0u);

  // The compressed setup must still be a live comparison, not two dead
  // networks: the snapshot run ends the horizon well above the knee.
  EXPECT_GT(snapshot.final_coverage, regular.final_coverage);
}

}  // namespace
}  // namespace snapq
