
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/energy.cc" "src/CMakeFiles/snapq_net.dir/net/energy.cc.o" "gcc" "src/CMakeFiles/snapq_net.dir/net/energy.cc.o.d"
  "/root/repo/src/net/link_model.cc" "src/CMakeFiles/snapq_net.dir/net/link_model.cc.o" "gcc" "src/CMakeFiles/snapq_net.dir/net/link_model.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/snapq_net.dir/net/message.cc.o" "gcc" "src/CMakeFiles/snapq_net.dir/net/message.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/snapq_net.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/snapq_net.dir/net/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
