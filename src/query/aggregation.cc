#include "query/aggregation.h"

#include <algorithm>

#include "common/check.h"

namespace snapq {

PartialAggregate::PartialAggregate(AggregateFunction function)
    : function_(function) {
  SNAPQ_CHECK(function != AggregateFunction::kNone);
}

void PartialAggregate::AddValue(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

PartialAggregate PartialAggregate::FromWire(AggregateFunction function,
                                            uint64_t count, double sum,
                                            double min, double max) {
  PartialAggregate p(function);
  p.count_ = count;
  p.sum_ = sum;
  p.min_ = min;
  p.max_ = max;
  return p;
}

void PartialAggregate::Merge(const PartialAggregate& other) {
  SNAPQ_CHECK(function_ == other.function_);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PartialAggregate::Finalize() const {
  switch (function_) {
    case AggregateFunction::kNone:
      break;
    case AggregateFunction::kSum:
      return sum_;
    case AggregateFunction::kAvg:
      return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    case AggregateFunction::kMin:
      return min_;
    case AggregateFunction::kMax:
      return max_;
    case AggregateFunction::kCount:
      return static_cast<double>(count_);
  }
  return 0.0;
}

}  // namespace snapq
