// EXPLAIN / EXPLAIN ANALYZE: the answer-provenance and cost-attribution
// report for one query. The paper's §3 promise is that a USE SNAPSHOT
// query is answered "transparently from the application" by
// representatives; this module is the database-style window through that
// transparency:
//
//  * predicate resolution — how the WHERE clause bound to a rectangle and
//    which nodes it matches;
//  * routing decision — snapshot vs regular fan-out, representative-biased
//    parent selection, sleep mode, tree depth;
//  * per-node provenance — for every matching node, who answered for it,
//    whether the value is a model estimate, the estimate's current error
//    against the effective threshold T, and the election epoch backing the
//    representation;
//  * cost — participants / messages / energy, estimated from the plan and
//    (under ANALYZE) joined against the actuals the executor captured.
//
// EXPLAIN plans without executing (nothing transmitted, charged or
// journaled); EXPLAIN ANALYZE executes the query, emits the frozen-schema
// `query_explain` journal event and feeds the estimate-vs-actual deltas
// into the metric registry.
#ifndef SNAPQ_QUERY_EXPLAIN_H_
#define SNAPQ_QUERY_EXPLAIN_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "obs/energy_ledger.h"
#include "query/ast.h"
#include "query/executor.h"

namespace snapq {

/// Provenance of one matching node's answer (or lack of one).
struct ExplainNodeRow {
  NodeId node = kInvalidNode;
  /// Who reported this node's value; kInvalidNode when uncovered.
  NodeId reporter = kInvalidNode;
  bool covered = false;
  /// True when the value is the reporter's model estimate (§3), false for
  /// a self-reported reading.
  bool estimated = false;
  /// Election epoch backing the representation (the node's own epoch for
  /// self-reports); -1 when uncovered.
  int64_t epoch = -1;
  /// The reported value (covered rows only).
  double value = 0.0;
  /// Estimate − ground truth (signed); estimated rows only.
  std::optional<double> model_error;
  /// d(truth, estimate) under the configured error metric; 0 for
  /// self-reports.
  double model_distance = 0.0;
  /// model_distance <= the effective threshold T. Uncovered rows and
  /// self-reports are trivially within.
  bool within_threshold = true;
  /// Routing-tree depth of the reporter; -1 when uncovered/unreachable.
  int depth = -1;
  /// Audited actual error, from the accuracy auditor's cumulative history
  /// for this node (ExecutionOptions::audit): how far estimates for this
  /// node have *actually* been from ground truth across every audited
  /// round, next to the row's claimed error above. Absent when auditing
  /// is off or the node was never audited. Under ANALYZE the round just
  /// executed is included (the executor audits before the report is
  /// built).
  std::optional<double> audited_mean_error;
  uint64_t audited_count = 0;
};

/// One side of the cost join (estimated at plan time / actual at run
/// time), straight out of QueryProvenance.
struct ExplainCost {
  size_t participants = 0;
  size_t responders = 0;
  size_t covered = 0;
  size_t messages = 0;  ///< kQueryReply transmissions
  double energy = 0.0;  ///< energy drained (0 unless charge_energy)
  int tree_depth = -1;
};

/// Per-cause joule deltas captured around an ANALYZE execution, straight
/// off the energy ledger (total and one slot per obs::EnergyCause).
/// Present only when a ledger is attached to the simulator — this is the
/// query's own drain, including every protocol message it induced, not
/// just the executor's aggregate charge.
struct ExplainEnergyBreakdown {
  std::array<double, obs::kNumEnergyCauses> by_cause{};
  double total = 0.0;
};

/// The full report. ToString() renders the shell's plan text.
struct ExplainReport {
  /// The normalized query (no EXPLAIN prefix).
  std::string sql;
  bool analyze = false;

  // -- Predicate resolution ---------------------------------------------------
  /// "region <NAME>" | "literal RECT" | "default (everywhere)".
  std::string region_source;
  Rect region{0, 0, 0, 0};
  size_t matching_nodes = 0;

  // -- Routing / execution strategy -------------------------------------------
  bool use_snapshot = false;
  bool favor_representatives = false;
  bool passive_nodes_sleep = false;
  bool charge_energy = false;
  NodeId sink = 0;
  size_t reachable_nodes = 0;
  size_t num_nodes = 0;

  // -- Snapshot state at plan time --------------------------------------------
  size_t active = 0;
  size_t passive = 0;
  size_t spurious = 0;
  /// The effective threshold the provenance rows are judged against:
  /// the per-query USE SNAPSHOT ERROR override when present, else the
  /// deployment's configured T.
  double threshold = 0.0;
  bool threshold_overridden = false;
  std::string metric;  ///< error-metric name ("sse", "absolute", ...)

  // -- Cost -------------------------------------------------------------------
  ExplainCost estimated;
  /// Actuals captured during execution; ANALYZE only.
  std::optional<ExplainCost> actual;
  /// Ledger joule deltas around the execution; ANALYZE with an energy
  /// ledger attached only.
  std::optional<ExplainEnergyBreakdown> energy;
  /// The query's answer; ANALYZE only.
  std::optional<QueryResult> result;

  // -- Provenance -------------------------------------------------------------
  /// One row per matching node, ascending node id. Plan-derived for
  /// EXPLAIN, execution-derived for EXPLAIN ANALYZE.
  std::vector<ExplainNodeRow> rows;

  /// Number of rows answered by a model estimate.
  size_t EstimatedRows() const;
  /// Largest |model_error| across estimated rows (0 when none).
  double MaxAbsModelError() const;

  /// The rendered multi-section plan report (plan, cost table, per-node
  /// provenance table, answer).
  std::string ToString() const;
};

/// Builds the report for `spec` against the executor's current network
/// state. `spec.explain` selects plan-only vs analyze; a spec with
/// ExplainMode::kNone is treated as plan-only. Fails (Status) on unknown
/// columns/regions — never crashes on malformed input.
Result<ExplainReport> ExplainQuery(QueryExecutor& executor,
                                   const QuerySpec& spec,
                                   const ExecutionOptions& options);

/// Parses `sql` (with or without the EXPLAIN prefix) and explains it.
/// "EXPLAIN ANALYZE ..." executes; "EXPLAIN ..." and bare queries plan
/// only.
Result<ExplainReport> ExplainSql(QueryExecutor& executor,
                                 const std::string& sql,
                                 const ExecutionOptions& options);

}  // namespace snapq

#endif  // SNAPQ_QUERY_EXPLAIN_H_
