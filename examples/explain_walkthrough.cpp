// explain_walkthrough: the EXPLAIN / EXPLAIN ANALYZE tour. Builds a small
// deployment, trains models, elects a snapshot, then:
//
//   1. EXPLAIN  — the side-effect-free plan: predicate resolution, routing
//      decision, per-node provenance, estimated cost;
//   2. EXPLAIN ANALYZE — executes the query and joins estimated vs actual
//      cost, emitting the frozen-schema `query_explain` journal event.
//
// With an argument, journal events are appended to that JSONL file (CI
// validates the query_explain line against the frozen schema); without
// one they are buffered and the query events echoed at the end.
//
//   $ ./build/examples/explain_walkthrough [journal.jsonl]
#include <cstdio>
#include <memory>
#include <string>

#include "api/network.h"
#include "common/rng.h"
#include "data/random_walk.h"
#include "obs/journal.h"

using namespace snapq;

int main(int argc, char** argv) {
  Rng rng(7);
  RandomWalkConfig walk;
  walk.num_nodes = 40;
  walk.num_classes = 5;
  walk.horizon = 40;
  Result<Dataset> data = Dataset::Create(GenerateRandomWalk(walk, rng).series);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  NetworkConfig config;
  config.num_nodes = data->num_nodes();
  config.snapshot.threshold = 1.0;
  config.seed = 42;
  SensorNetwork net(config);

  obs::MemoryJournalSink* memory = nullptr;
  if (argc > 1) {
    auto file = std::make_unique<obs::FileJournalSink>(argv[1]);
    if (!file->ok()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    net.sim().journal().SetSink(std::move(file));
  } else {
    memory = static_cast<obs::MemoryJournalSink*>(
        net.sim().journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));
  }

  const Time horizon = static_cast<Time>(data->horizon());
  if (Status s = net.AttachDataset(std::move(*data)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(horizon - 1);
  net.RunElection(horizon - 1);

  const std::string query =
      "SELECT avg(value) FROM sensors "
      "WHERE loc IN RECT(0.0, 0.0, 1.0, 0.5) USE SNAPSHOT";

  std::printf("== EXPLAIN (plan only, nothing executes) ==\n");
  ExecutionOptions options;
  options.charge_energy = true;
  Result<ExplainReport> plan = net.Explain("EXPLAIN " + query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan->ToString().c_str());

  std::printf("== EXPLAIN ANALYZE (executes; estimated vs actual) ==\n");
  Result<ExplainReport> analyzed =
      net.Explain("EXPLAIN ANALYZE " + query, options);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", analyzed->ToString().c_str());

  net.sim().journal().Flush();
  if (memory != nullptr) {
    std::printf("== query journal events ==\n");
    for (const std::string& line : memory->lines()) {
      if (line.find("\"query") != std::string::npos) {
        std::printf("%s\n", line.c_str());
      }
    }
  }
  return 0;
}
