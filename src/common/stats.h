// Streaming statistics accumulators used by the experiment harness (the
// paper reports averages over 10 repetitions) and by the regression models'
// tests.
#ifndef SNAPQ_COMMON_STATS_H_
#define SNAPQ_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace snapq {

/// Welford-style running mean/variance plus min/max. Numerically stable for
/// long streams.
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divides by n). Zero when fewer than 2 samples.
  double variance() const;
  /// Sample variance (divides by n-1). Zero when fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Buffered sample set supporting percentiles; used for experiment
/// summaries where the distribution shape matters (e.g. message counts).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// Linear-interpolated percentile, p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  double Min() const;
  double Max() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

}  // namespace snapq

#endif  // SNAPQ_COMMON_STATS_H_
