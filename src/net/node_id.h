// Node identity. The paper assumes unique node ids (e.g. MAC addresses) and
// uses "largest id wins" tie-breaking during representative election.
#ifndef SNAPQ_NET_NODE_ID_H_
#define SNAPQ_NET_NODE_ID_H_

#include <cstdint>
#include <limits>

namespace snapq {

using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Address used by broadcast messages.
inline constexpr NodeId kBroadcastId = kInvalidNode - 1;

/// Simulation time in integer time units (the paper's granularity).
using Time = int64_t;

}  // namespace snapq

#endif  // SNAPQ_NET_NODE_ID_H_
