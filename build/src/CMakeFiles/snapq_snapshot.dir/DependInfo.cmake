
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snapshot/agent.cc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/agent.cc.o" "gcc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/agent.cc.o.d"
  "/root/repo/src/snapshot/election.cc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/election.cc.o" "gcc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/election.cc.o.d"
  "/root/repo/src/snapshot/maintenance.cc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/maintenance.cc.o" "gcc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/maintenance.cc.o.d"
  "/root/repo/src/snapshot/multi_resolution.cc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/multi_resolution.cc.o" "gcc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/multi_resolution.cc.o.d"
  "/root/repo/src/snapshot/node_state.cc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/node_state.cc.o" "gcc" "src/CMakeFiles/snapq_snapshot.dir/snapshot/node_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
