// Per-node model state: the node's own current measurement plus the cache
// of neighbor observations, with the §3 "can N_i represent N_j?" predicate.
#ifndef SNAPQ_MODEL_MODEL_STORE_H_
#define SNAPQ_MODEL_MODEL_STORE_H_

#include <optional>

#include "model/cache_manager.h"
#include "model/error_metric.h"
#include "net/node_id.h"

namespace snapq {

/// Everything node N_i knows about its data environment.
class ModelStore {
 public:
  ModelStore(NodeId self, const CacheConfig& cache_config);

  NodeId self() const { return self_; }

  /// Updates this node's own current measurement (each time unit).
  void SetOwnValue(double x, Time t);
  double own_value() const { return own_value_; }
  Time own_value_time() const { return own_value_time_; }

  /// Records a neighbor observation: N_j's value `y` heard at time `t`,
  /// paired with this node's own current measurement (the paper stores
  /// simultaneously-collected pairs). Returns the cache action taken.
  CacheManager::Action Observe(NodeId j, double y, Time t);

  /// x̂_j given this node's current measurement; nullopt without a model.
  std::optional<double> Estimate(NodeId j) const {
    return cache_.Estimate(j, own_value_);
  }

  /// §3: N_i can represent N_j iff d(x_j, x̂_j) <= T. `actual_y` is N_j's
  /// announced measurement (e.g. from an invitation). False without a model.
  bool CanRepresent(NodeId j, double actual_y, const ErrorMetric& metric,
                    double threshold) const;

  CacheManager& cache() { return cache_; }
  const CacheManager& cache() const { return cache_; }

 private:
  NodeId self_;
  CacheManager cache_;
  double own_value_ = 0.0;
  Time own_value_time_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_MODEL_MODEL_STORE_H_
