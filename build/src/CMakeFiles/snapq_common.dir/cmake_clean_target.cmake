file(REMOVE_RECURSE
  "libsnapq_common.a"
)
