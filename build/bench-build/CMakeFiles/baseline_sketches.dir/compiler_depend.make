# Empty compiler generated dependencies file for baseline_sketches.
# This may be replaced when dependencies are built.
