// Message-level in-network aggregation (TAG [11], the substrate of the
// paper's §6.2): the sink floods a query request; each node adopts the
// first sender it hears as its tree parent; partial aggregates travel back
// up level by level, each node transmitting exactly one constant-size
// record. Unlike QueryExecutor (which computes participation analytically
// over the connectivity graph), this engine exchanges real simulator
// messages, so message loss, dead routers and radio costs interact with
// the aggregate exactly as they would on the air.
#ifndef SNAPQ_QUERY_INNETWORK_H_
#define SNAPQ_QUERY_INNETWORK_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "query/aggregation.h"
#include "query/ast.h"
#include "sim/simulator.h"
#include "snapshot/agent.h"

namespace snapq {

/// Outcome of one message-level aggregation round.
struct InNetworkResult {
  /// The aggregate delivered at the sink; nullopt when no data arrived.
  std::optional<double> aggregate;
  /// Readings folded into the sink's answer (self-reports + estimates).
  uint64_t readings = 0;
  /// Nodes that transmitted at least one message for this query.
  size_t participants = 0;
  uint64_t request_messages = 0;
  uint64_t reply_messages = 0;
};

/// Tunables of the dissemination/collection schedule.
struct InNetworkConfig {
  /// Upper bound on tree depth: a node at depth d replies at
  /// start + max_depth + (max_depth - d), so deeper nodes report first
  /// and parents can fold children's partials into their own record.
  Time max_depth = 16;
};

/// Runs aggregate queries as real radio traffic. One instance per
/// (simulator, agents) pair; queries run one at a time.
class InNetworkAggregator {
 public:
  InNetworkAggregator(Simulator* sim,
                      std::vector<std::unique_ptr<SnapshotAgent>>* agents,
                      const InNetworkConfig& config = {});

  ~InNetworkAggregator();

  InNetworkAggregator(const InNetworkAggregator&) = delete;
  InNetworkAggregator& operator=(const InNetworkAggregator&) = delete;

  /// Executes one aggregation round over `region`, rooted at `sink`.
  /// Advances the simulator to the round's deadline (2 * max_depth + 2
  /// time units past now()). In snapshot mode only unrepresented matching
  /// nodes and representatives of matching nodes contribute readings;
  /// every tree node still routes.
  InNetworkResult Execute(const Rect& region, AggregateFunction function,
                          NodeId sink, bool use_snapshot);

 private:
  struct NodeState {
    bool saw_request = false;
    NodeId parent = kInvalidNode;
    Time depth = 0;
    bool replied = false;
    std::unique_ptr<PartialAggregate> partial;
    uint64_t readings = 0;
    bool transmitted = false;
  };

  void OnQueryMessage(NodeId self, const Message& msg);
  void HandleRequest(NodeId self, const Message& msg);
  void HandleReply(NodeId self, const Message& msg);
  /// Folds this node's own contribution (per the snapshot rule) into its
  /// partial state.
  void ContributeLocal(NodeId self);
  void SendReply(NodeId self);

  Simulator* const sim_;
  std::vector<std::unique_ptr<SnapshotAgent>>* const agents_;
  const InNetworkConfig config_;

  // Per-query transient state.
  int64_t query_id_ = 0;
  Rect region_{};
  AggregateFunction function_ = AggregateFunction::kSum;
  bool use_snapshot_ = false;
  NodeId sink_ = kInvalidNode;
  Time start_ = 0;
  std::vector<NodeState> states_;
  bool active_ = false;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_INNETWORK_H_
