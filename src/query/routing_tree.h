// Flooding-built aggregation tree, as in TAG [11] / the paper's §6.2: the
// sink floods a tree-formation beacon; each node adopts the first
// (lowest-hop) sender it hears as its parent. We build the BFS tree
// deterministically over the live bidirectional-connectivity graph —
// requests travel sink->leaves, replies and partial aggregates travel back
// up the same edges, so links must work both ways.
#ifndef SNAPQ_QUERY_ROUTING_TREE_H_
#define SNAPQ_QUERY_ROUTING_TREE_H_

#include <vector>

#include "net/link_model.h"
#include "net/node_id.h"

namespace snapq {

/// A rooted tree over the live nodes reachable from the sink.
class RoutingTree {
 public:
  /// Builds the BFS tree rooted at `sink`. `alive[i]` gates node i's
  /// participation; dead nodes neither route nor respond. Ties (equal-depth
  /// parents) break toward the smallest parent id, matching the
  /// deterministic first-heard order of a simultaneous flood.
  ///
  /// `favor`: optional bias (the paper's §3.1 note that routing can favor
  /// representatives): among equal-depth parent candidates, nodes with
  /// favor[i] == true win over unfavored ones.
  static RoutingTree Build(const LinkModel& links,
                           const std::vector<bool>& alive, NodeId sink,
                           const std::vector<bool>* favor = nullptr);

  NodeId sink() const { return sink_; }

  /// Parent of `id`; kInvalidNode for the sink and unreachable nodes.
  NodeId parent(NodeId id) const { return parent_[id]; }

  /// Hop distance from the sink; negative when unreachable.
  int depth(NodeId id) const { return depth_[id]; }

  /// True when `id` has a path to the sink.
  bool IsReachable(NodeId id) const { return depth_[id] >= 0; }

  /// Number of nodes with a path to the sink (the sink included).
  size_t CountReachable() const;

  /// Deepest reachable node's hop distance; 0 for a lone sink.
  int MaxDepth() const;

  size_t num_nodes() const { return parent_.size(); }

  /// Nodes on the path from `id` up to and including the sink; empty when
  /// unreachable. The first element is `id` itself.
  std::vector<NodeId> PathToSink(NodeId id) const;

 private:
  RoutingTree(NodeId sink, std::vector<NodeId> parent, std::vector<int> depth)
      : sink_(sink), parent_(std::move(parent)), depth_(std::move(depth)) {}

  NodeId sink_;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_ROUTING_TREE_H_
