file(REMOVE_RECURSE
  "CMakeFiles/weather_monitoring.dir/weather_monitoring.cpp.o"
  "CMakeFiles/weather_monitoring.dir/weather_monitoring.cpp.o.d"
  "weather_monitoring"
  "weather_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
