// Election protocol tests, including the paper's §5 worked example
// (Figures 3 and 4) asserted node by node.
#include "snapshot/election.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/topology.h"
#include "snapshot/agent.h"

namespace snapq {
namespace {

struct Harness {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  Harness(size_t n, const SnapshotConfig& config, SimConfig sim_config = {},
          std::vector<Point> positions = {}, double range = 10.0) {
    if (positions.empty()) {
      // Default: everyone in range of everyone.
      for (size_t i = 0; i < n; ++i) {
        positions.push_back(
            {static_cast<double>(i) * 0.01, 0.0});
      }
    }
    sim = std::make_unique<Simulator>(
        std::move(positions), std::vector<double>(n, range), sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), config, 1000 + i));
      agents.back()->Install();
    }
  }

  /// Injects history so that `rep` holds an exact predictive model of
  /// `target` (slope 1 through their current values).
  void TeachModel(NodeId rep, NodeId target) {
    const double vi = agents[rep]->measurement();
    const double vj = agents[target]->measurement();
    agents[rep]->models().cache().Observe(target, vi - 1.0, vj - 1.0, 0);
    agents[rep]->models().cache().Observe(target, vi + 1.0, vj + 1.0, 0);
  }
};

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 6;
  config.rule4_hard_cap = 16;
  return config;
}

// ---------------------------------------------------------------------------
// The paper's worked example. Paper nodes N1..N8 map to ids 0..7. The
// candidate lists of Figure 3:
//   Cand_1={N2}  Cand_2={}  Cand_3={N4,N6}  Cand_4={N1,N2,N3,N5}
//   Cand_5={N8}  Cand_6={N7}  Cand_7={N8}  Cand_8={}
// Expected final state (Figure 4): representatives N3, N4, N7 with
// N4 -> {N1,N2,N5}, N3 -> {N6}, N7 -> {N8}; everyone else PASSIVE.
// ---------------------------------------------------------------------------

class PaperWalkthrough : public ::testing::Test {
 protected:
  void RunExample(Harness& h) {
    // Distinct measurements so injected models are node-specific.
    for (NodeId i = 0; i < 8; ++i) {
      h.agents[i]->SetMeasurement(100.0 + 10.0 * i);
    }
    // Candidate relations from Figure 3 (0-based).
    h.TeachModel(0, 1);
    h.TeachModel(2, 3);
    h.TeachModel(2, 5);
    h.TeachModel(3, 0);
    h.TeachModel(3, 1);
    h.TeachModel(3, 2);
    h.TeachModel(3, 4);
    h.TeachModel(4, 7);
    h.TeachModel(5, 6);
    h.TeachModel(6, 7);
    RunGlobalElection(*h.sim, h.agents, 0, TestConfig());
  }
};

TEST_F(PaperWalkthrough, FinalRepresentativesMatchFigure4) {
  Harness h(8, TestConfig());
  RunExample(h);
  const SnapshotView view = CaptureSnapshot(h.agents);
  EXPECT_EQ(view.CountActive(), 3u);
  EXPECT_EQ(view.node(2).mode, NodeMode::kActive);  // N3
  EXPECT_EQ(view.node(3).mode, NodeMode::kActive);  // N4
  EXPECT_EQ(view.node(6).mode, NodeMode::kActive);  // N7
  for (NodeId passive : {0u, 1u, 4u, 5u, 7u}) {
    EXPECT_EQ(view.node(passive).mode, NodeMode::kPassive)
        << "node " << passive;
  }
}

TEST_F(PaperWalkthrough, RepresentationSetsMatchFigure4) {
  Harness h(8, TestConfig());
  RunExample(h);
  const SnapshotView view = CaptureSnapshot(h.agents);
  auto keys = [](const std::map<NodeId, int64_t>& m) {
    std::set<NodeId> out;
    for (const auto& [k, v] : m) out.insert(k);
    return out;
  };
  EXPECT_EQ(keys(view.node(3).represents), (std::set<NodeId>{0, 1, 4}));
  EXPECT_EQ(keys(view.node(2).represents), (std::set<NodeId>{5}));
  EXPECT_EQ(keys(view.node(6).represents), (std::set<NodeId>{7}));
}

TEST_F(PaperWalkthrough, RepresentativePointersAreConsistent) {
  Harness h(8, TestConfig());
  RunExample(h);
  const SnapshotView view = CaptureSnapshot(h.agents);
  EXPECT_EQ(view.node(0).representative, 3u);
  EXPECT_EQ(view.node(1).representative, 3u);
  EXPECT_EQ(view.node(4).representative, 3u);
  EXPECT_EQ(view.node(5).representative, 2u);
  EXPECT_EQ(view.node(7).representative, 6u);  // tie N5/N7 -> larger id
  EXPECT_EQ(view.CountSpurious(), 0u);
}

TEST_F(PaperWalkthrough, AtMostFiveMessagesPerNode) {
  // Table 2: invitation + cand list + accept + up to two refinement
  // messages = five per node under reliable communication.
  Harness h(8, TestConfig());
  RunExample(h);
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_LE(h.sim->messages_sent_by(i), 5u) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Structural / property tests on randomized instances.
// ---------------------------------------------------------------------------

TEST(ElectionTest, NoOffersMakesEveryoneActive) {
  Harness h(5, TestConfig());
  for (NodeId i = 0; i < 5; ++i) h.agents[i]->SetMeasurement(i * 100.0);
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  EXPECT_EQ(stats.num_active, 5u);
  EXPECT_EQ(stats.num_passive, 0u);
  EXPECT_EQ(stats.num_undefined, 0u);
}

TEST(ElectionTest, PerfectModelsElectSingleRepresentative) {
  Harness h(6, TestConfig());
  for (NodeId i = 0; i < 6; ++i) h.agents[i]->SetMeasurement(50.0 + i);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) h.TeachModel(i, j);
    }
  }
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  EXPECT_EQ(stats.num_active, 1u);
  EXPECT_EQ(stats.num_passive, 5u);
  // All candidate lists tie at length 5: the largest id wins everywhere
  // except at the winner itself (mutual-pair Rule 0).
  const SnapshotView view = CaptureSnapshot(h.agents);
  EXPECT_EQ(view.node(0).representative, 5u);
  EXPECT_EQ(view.node(5).mode, NodeMode::kActive);
}

TEST(ElectionTest, DisconnectedNodesStayActive) {
  // Two clusters out of range of each other.
  std::vector<Point> positions = {{0, 0}, {0.1, 0}, {5, 0}, {5.1, 0}};
  Harness h(4, TestConfig(), {}, positions, /*range=*/0.5);
  for (NodeId i = 0; i < 4; ++i) h.agents[i]->SetMeasurement(10.0 + i);
  h.TeachModel(0, 1);
  h.TeachModel(2, 3);
  RunGlobalElection(*h.sim, h.agents, 0, TestConfig());
  const SnapshotView view = CaptureSnapshot(h.agents);
  // One representative per cluster.
  EXPECT_EQ(view.CountActive(), 2u);
  EXPECT_EQ(view.node(1).representative, 0u);
  EXPECT_EQ(view.node(3).representative, 2u);
}

TEST(ElectionTest, EveryNodeSettlesUnderHeavyLoss) {
  SimConfig sim_config;
  sim_config.loss_probability = 0.6;
  sim_config.seed = 99;
  Harness h(20, TestConfig(), sim_config);
  for (NodeId i = 0; i < 20; ++i) h.agents[i]->SetMeasurement(5.0 + i);
  for (NodeId i = 0; i < 20; ++i) {
    for (NodeId j = 0; j < 20; ++j) {
      if (i != j) h.TeachModel(i, j);
    }
  }
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  EXPECT_EQ(stats.num_undefined, 0u);
  EXPECT_EQ(stats.num_active + stats.num_passive, 20u);
}

TEST(ElectionTest, TotalLossMakesEveryoneActive) {
  SimConfig sim_config;
  sim_config.loss_probability = 1.0;
  Harness h(6, TestConfig(), sim_config);
  for (NodeId i = 0; i < 6; ++i) h.agents[i]->SetMeasurement(1.0);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) h.TeachModel(i, j);
    }
  }
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  EXPECT_EQ(stats.num_active, 6u);
  EXPECT_EQ(stats.num_undefined, 0u);
}

TEST(ElectionTest, DeadNodesDoNotParticipate) {
  Harness h(4, TestConfig());
  for (NodeId i = 0; i < 4; ++i) h.agents[i]->SetMeasurement(20.0 + i);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i != j) h.TeachModel(i, j);
    }
  }
  h.sim->Kill(3);  // the would-be winner (largest id)
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  const SnapshotView view = CaptureSnapshot(h.agents);
  EXPECT_EQ(stats.num_active, 1u);
  EXPECT_EQ(view.node(0).representative, 2u);  // next-largest id wins
  EXPECT_EQ(view.node(3).mode, NodeMode::kUndefined);  // dead, untouched
}

TEST(ElectionTest, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    SimConfig sim_config;
    sim_config.loss_probability = 0.4;
    sim_config.seed = seed;
    Harness h(12, TestConfig(), sim_config);
    for (NodeId i = 0; i < 12; ++i) h.agents[i]->SetMeasurement(3.0 * i);
    for (NodeId i = 0; i < 12; ++i) {
      for (NodeId j = 0; j < 12; ++j) {
        if (i != j) h.TeachModel(i, j);
      }
    }
    RunGlobalElection(*h.sim, h.agents, 0, TestConfig());
    std::vector<NodeMode> modes;
    for (const auto& a : h.agents) modes.push_back(a->mode());
    return modes;
  };
  EXPECT_EQ(run(5), run(5));
}

// Property sweep: for any loss rate the election terminates with every
// live node decided, and every PASSIVE node's representative is ACTIVE
// under zero loss.
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, ElectionAlwaysSettles) {
  SimConfig sim_config;
  sim_config.loss_probability = GetParam();
  sim_config.seed = 42;
  Harness h(25, TestConfig(), sim_config);
  for (NodeId i = 0; i < 25; ++i) h.agents[i]->SetMeasurement(7.0 + i);
  for (NodeId i = 0; i < 25; ++i) {
    for (NodeId j = 0; j < 25; ++j) {
      if (i != j) h.TeachModel(i, j);
    }
  }
  const ElectionStats stats = RunGlobalElection(*h.sim, h.agents, 0,
                                                TestConfig());
  EXPECT_EQ(stats.num_undefined, 0u);
  EXPECT_EQ(stats.num_active + stats.num_passive, 25u);
  EXPECT_GE(stats.num_active, 1u);
  if (GetParam() == 0.0) {
    // Perfect communication: nobody is left pointing at a passive rep and
    // message count obeys the Table-2 bound.
    const SnapshotView view = CaptureSnapshot(h.agents);
    for (NodeId i = 0; i < 25; ++i) {
      if (view.node(i).mode == NodeMode::kPassive) {
        EXPECT_EQ(view.node(view.node(i).representative).mode,
                  NodeMode::kActive);
      }
      EXPECT_LE(h.sim->messages_sent_by(i), 5u);
    }
    EXPECT_EQ(view.CountSpurious(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace snapq
