// Whole-system integration: the full deployment lifecycle over drifting
// data — train, elect, run a continuous snapshot query while maintenance
// rounds keep the representative set fresh and nodes fail — driven
// entirely through the public SensorNetwork API.
#include <gtest/gtest.h>

#include "api/network.h"
#include "data/random_walk.h"

namespace snapq {
namespace {

NetworkConfig BaseConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_nodes = 30;
  config.transmission_range = 0.8;
  config.snapshot.threshold = 1.0;
  config.snapshot.max_wait = 8;
  config.snapshot.rule4_hard_cap = 16;
  config.snapshot.heartbeat_miss_limit = 1;
  config.seed = seed;
  return config;
}

Dataset WalkData(uint64_t seed, size_t nodes, size_t horizon,
                 size_t classes) {
  Rng rng(seed);
  RandomWalkConfig walk;
  walk.num_nodes = nodes;
  walk.num_classes = classes;
  walk.horizon = horizon;
  Result<Dataset> ds = Dataset::Create(GenerateRandomWalk(walk, rng).series);
  return std::move(ds).value();
}

TEST(IntegrationTest, ContinuousSnapshotQueryAcrossMaintenanceAndFailures) {
  SensorNetwork net(BaseConfig(17));
  ASSERT_TRUE(net.AttachDataset(WalkData(17, 30, 1001, 3)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  const ElectionStats election = net.RunElection(50);
  ASSERT_EQ(election.num_undefined, 0u);
  ASSERT_GT(election.num_passive, 0u);

  net.ScheduleMaintenance(net.now() + 100, 1000, 100);

  // Kill a representative mid-run: maintenance must heal around it.
  net.sim().ScheduleAt(350, [&net] {
    const SnapshotView view = net.Snapshot();
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      if (view.node(i).mode == NodeMode::kActive &&
          !view.node(i).represents.empty()) {
        net.sim().Kill(i);
        return;
      }
    }
  });

  std::vector<EpochResult> epochs;
  const Result<int64_t> scheduled = net.RunContinuousQuery(
      "SELECT avg(value) FROM sensors WHERE loc IN EVERYWHERE "
      "SAMPLE INTERVAL 50s FOR 800s USE SNAPSHOT",
      net.now() + 10,
      [&epochs](const EpochResult& e) { epochs.push_back(e); });
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(*scheduled, 16);

  net.RunAll();
  ASSERT_EQ(epochs.size(), 16u);

  size_t healthy_epochs = 0;
  for (const EpochResult& e : epochs) {
    ASSERT_TRUE(e.result.aggregate.has_value());
    // The snapshot answer must track the ground truth: both are averages
    // over the same region; model error is bounded by T per node.
    if (e.result.coverage >= 0.9) {
      ++healthy_epochs;
      EXPECT_NEAR(*e.result.aggregate, *e.result.true_aggregate,
                  5.0 + std::abs(*e.result.true_aggregate) * 0.05)
          << "epoch " << e.epoch;
    }
    // Snapshot execution never uses more nodes than the network has.
    EXPECT_LE(e.result.participants, 30u);
  }
  // The representative death may dent a couple of epochs; the run as a
  // whole stays healthy.
  EXPECT_GE(healthy_epochs, 12u);

  // After the full run, the snapshot is still coherent.
  const SnapshotView final_view = net.Snapshot();
  size_t live_undefined = 0;
  for (NodeId i = 0; i < 30; ++i) {
    if (net.sim().alive(i) &&
        final_view.node(i).mode == NodeMode::kUndefined) {
      ++live_undefined;
    }
  }
  EXPECT_EQ(live_undefined, 0u);
}

TEST(IntegrationTest, LossyLongRunStaysCoherent) {
  NetworkConfig config = BaseConfig(23);
  config.loss_probability = 0.2;
  config.snoop_probability = 0.05;
  SensorNetwork net(config);
  ASSERT_TRUE(net.AttachDataset(WalkData(23, 30, 801, 3)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  net.RunElection(50);
  net.ScheduleMaintenance(net.now() + 80, 800, 80);
  net.RunAll();

  const SnapshotView view = net.Snapshot();
  EXPECT_EQ(view.CountUndefined(), 0u);
  // Spurious beliefs bounded and every node answerable.
  EXPECT_LE(view.CountSpurious(), 8u);
  const Result<QueryResult> q = net.Query(
      "SELECT count(*) FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  ASSERT_TRUE(q.ok());
  EXPECT_GE(q->coverage, 0.9);
}

TEST(IntegrationTest, EnergyRunDiesGracefully) {
  NetworkConfig config = BaseConfig(31);
  config.energy = EnergyModel();  // 500-transmission batteries
  SensorNetwork net(config);
  ASSERT_TRUE(net.AttachDataset(WalkData(31, 30, 2001, 1)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  net.RunElection(50);
  net.ScheduleMaintenance(net.now() + 100, 2000, 100);
  // Heavy query load drains the network.
  ExecutionOptions options;
  options.charge_energy = true;
  for (Time t = 150; t < 2000; t += 2) {
    net.RunUntil(t);
    (void)net.Query(
        "SELECT sum(value) FROM sensors WHERE loc IN EVERYWHERE "
        "USE SNAPSHOT",
        options);
  }
  net.RunAll();
  // Whatever died, the simulation reached the horizon without protocol
  // assertions firing, and the surviving nodes are in defined states.
  const SnapshotView view = net.Snapshot();
  for (NodeId i = 0; i < 30; ++i) {
    if (net.sim().alive(i)) {
      EXPECT_NE(view.node(i).mode, NodeMode::kUndefined) << "node " << i;
    }
  }
}

}  // namespace
}  // namespace snapq
