// TAG-style partial aggregates [11]: each routing-tree node merges its
// children's partial states with its own readings and forwards a single
// constant-size record, so message volume is one record per participating
// node regardless of fan-in.
#ifndef SNAPQ_QUERY_AGGREGATION_H_
#define SNAPQ_QUERY_AGGREGATION_H_

#include <cstdint>
#include <limits>

#include "query/ast.h"

namespace snapq {

/// Merge-able partial state for SUM/AVG/MIN/MAX/COUNT.
class PartialAggregate {
 public:
  explicit PartialAggregate(AggregateFunction function);

  AggregateFunction function() const { return function_; }

  /// Folds one reading into the state.
  void AddValue(double v);

  /// Merges a child's partial state (same function required).
  void Merge(const PartialAggregate& other);

  /// Reconstructs a partial state from its wire representation (the four
  /// statistics a TAG record carries). Used by the message-level
  /// aggregator when folding a child's reply.
  static PartialAggregate FromWire(AggregateFunction function,
                                   uint64_t count, double sum, double min,
                                   double max);

  /// Number of readings folded in so far.
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Final answer. COUNT returns the count; AVG of zero readings is 0;
  /// MIN/MAX of zero readings return +/-infinity.
  double Finalize() const;

 private:
  AggregateFunction function_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_AGGREGATION_H_
