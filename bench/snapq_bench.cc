// The unified benchmark harness: every experiment driver registered via
// SNAPQ_BENCHMARK in one binary, timed under the hot-path profiler, with
// results written to the canonical BENCH.json (bench_report.h). Typical
// uses:
//
//   snapq_bench --list                   # what is registered
//   snapq_bench --filter fig0 --quick    # fast subset, scaled-down work
//   snapq_bench --out BENCH.json         # full run for the trajectory
//   tools/bench_compare.py old.json new.json
//
// Each benchmark runs `--reps` times (default 3, 1 in quick mode) after
// one discarded warmup; the median repetition is the headline number so a
// cold cache or a descheduled run cannot fake a regression. Driver stdout
// (the paper tables) is routed to /dev/null unless --verbose, so the
// harness output stays a readable progress log.
#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "exec/parallel_sweep.h"
#include "obs/metric_registry.h"
#include "obs/profiler.h"

namespace snapq::bench {
namespace {

struct Options {
  bool list = false;
  bool quick = false;
  bool verbose = false;
  bool warmup = true;
  bool sidecars = false;
  int harness_reps = 0;  // 0 = default (3, or 1 when quick)
  int jobs = 0;          // 0 = SNAPQ_JOBS / hardware concurrency
  std::string out = "BENCH.json";
  std::vector<std::string> filters;
};

int Usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --list            list registered benchmarks and exit\n"
      "  --filter SUBSTR   run only benchmarks whose name contains SUBSTR\n"
      "                    (repeatable; any match selects)\n"
      "  --quick           ~10x less work per benchmark, 1 harness rep\n"
      "  --reps N          timed repetitions per benchmark (default 3;\n"
      "                    1 with --quick)\n"
      "  --jobs N          worker threads for per-seed trial loops\n"
      "                    (default: SNAPQ_JOBS or hardware concurrency;\n"
      "                    results are bit-identical for any N)\n"
      "  --out FILE        where to write BENCH.json (default BENCH.json)\n"
      "  --sidecars        let drivers write their .metrics/.trace sidecars\n"
      "  --verbose         do not silence driver stdout\n"
      "  --no-warmup       skip the discarded warmup repetition\n",
      argv0);
  return code;
}

double ProcessCpuMicros() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

/// Redirects fd 1 to /dev/null for the lifetime of the object. Works below
/// stdio/iostream so both printf drivers and std::cout drivers go quiet.
/// Refcounted behind a mutex: fd 1 is process-global state, so nested or
/// concurrent silencers must not each dup/restore it — the first one in
/// redirects, the last one out restores, and anything between is a no-op.
class StdoutSilencer {
 public:
  StdoutSilencer() {
    std::lock_guard<std::mutex> lock(Mutex());
    if (Depth()++ > 0) return;
    std::fflush(stdout);
    std::cout.flush();
    Saved() = dup(1);
    const int devnull = open("/dev/null", O_WRONLY);
    if (Saved() >= 0 && devnull >= 0) dup2(devnull, 1);
    if (devnull >= 0) close(devnull);
  }
  ~StdoutSilencer() {
    std::lock_guard<std::mutex> lock(Mutex());
    if (--Depth() > 0) return;
    std::fflush(stdout);
    std::cout.flush();
    if (Saved() >= 0) {
      dup2(Saved(), 1);
      close(Saved());
      Saved() = -1;
    }
  }
  StdoutSilencer(const StdoutSilencer&) = delete;
  StdoutSilencer& operator=(const StdoutSilencer&) = delete;

 private:
  static std::mutex& Mutex() {
    static std::mutex m;
    return m;
  }
  static int& Depth() {
    static int depth = 0;
    return depth;
  }
  static int& Saved() {
    static int saved = -1;
    return saved;
  }
};

bool Selected(const BenchInfo& info, const Options& opt) {
  if (opt.filters.empty()) return true;
  for (const std::string& f : opt.filters) {
    if (std::strstr(info.name, f.c_str()) != nullptr) return true;
  }
  return false;
}

BenchmarkResult RunOne(const BenchInfo& info, const Options& opt,
                       int harness_reps, int driver_reps, int* verdict) {
  RunContext ctx;
  ctx.name = info.name;
  ctx.argv0.clear();  // sidecars (if any) labeled by benchmark name
  ctx.quick = opt.quick;
  ctx.repetitions = driver_reps;
  ctx.write_sidecars = opt.sidecars;
  ctx.jobs = exec::ResolveJobs(opt.jobs);

  using obs::HotOp;
  using obs::LogHistogram;
  using obs::ProfPhase;
  using obs::Profiler;

  auto run_once = [&]() {
    if (opt.verbose) {
      info.fn(ctx);
    } else {
      StdoutSilencer quiet;
      info.fn(ctx);
    }
  };

  if (opt.warmup) {
    obs::GlobalMetrics().Reset();
    run_once();
  }

  std::vector<double> wall_ms, cpu_ms;
  std::array<uint64_t, obs::kNumHotOps> counters{};
  std::array<LogHistogram, obs::kNumProfPhases> merged_wall{};
  for (int rep = 0; rep < harness_reps; ++rep) {
    obs::GlobalMetrics().Reset();
    Profiler::Global().Reset();
    Profiler::Enable();
    const auto wall_start = std::chrono::steady_clock::now();
    const double cpu_start = ProcessCpuMicros();
    run_once();
    const double cpu_end = ProcessCpuMicros();
    const auto wall_end = std::chrono::steady_clock::now();
    Profiler::Disable();

    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count());
    cpu_ms.push_back((cpu_end - cpu_start) / 1e3);
    // The drivers are fully seeded, so hot-op counts are identical across
    // repetitions; keeping the last is keeping all of them.
    for (size_t op = 0; op < obs::kNumHotOps; ++op) {
      counters[op] = Profiler::Global().count(static_cast<HotOp>(op));
    }
    for (size_t ph = 0; ph < obs::kNumProfPhases; ++ph) {
      merged_wall[ph].MergeFrom(
          Profiler::Global().wall_us(static_cast<ProfPhase>(ph)));
    }
  }

  BenchmarkResult result;
  result.name = info.name;
  result.wall_ms = StatSummary::FromSamples(wall_ms);
  result.cpu_ms = StatSummary::FromSamples(cpu_ms);
  const double median_sec = result.wall_ms.median / 1e3;
  for (size_t op = 0; op < obs::kNumHotOps; ++op) {
    const char* name = obs::HotOpName(static_cast<HotOp>(op));
    result.counters.emplace_back(name, counters[op]);
    result.throughput.emplace_back(
        std::string(name) + "_per_sec",
        median_sec > 0.0 ? static_cast<double>(counters[op]) / median_sec
                         : 0.0);
  }
  for (size_t ph = 0; ph < obs::kNumProfPhases; ++ph) {
    const LogHistogram& h = merged_wall[ph];
    PhaseLatency lat;
    lat.phase = obs::ProfPhaseName(static_cast<ProfPhase>(ph));
    lat.count = h.count();
    lat.p50 = h.Percentile(50);
    lat.p95 = h.Percentile(95);
    lat.p99 = h.Percentile(99);
    lat.max = h.max_seen();
    result.latency_us.push_back(std::move(lat));
  }
  result.peak_rss_kb = PeakRssKb();
  *verdict = ctx.exit_code;
  return result;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--no-warmup") {
      opt.warmup = false;
    } else if (arg == "--sidecars") {
      opt.sidecars = true;
    } else if (arg == "--filter") {
      opt.filters.emplace_back(value("--filter"));
    } else if (arg == "--reps") {
      opt.harness_reps = std::atoi(value("--reps"));
      if (opt.harness_reps <= 0) {
        std::fprintf(stderr, "--reps wants a positive integer\n");
        return 2;
      }
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(value("--jobs"));
      if (opt.jobs <= 0) {
        std::fprintf(stderr, "--jobs wants a positive integer\n");
        return 2;
      }
    } else if (arg == "--out") {
      opt.out = value("--out");
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0], 2);
    }
  }

  const auto& all = Registry::Instance().benchmarks();
  if (opt.list) {
    for (const BenchInfo& info : all) {
      std::printf("%-32s %s\n", info.name, info.description);
    }
    return 0;
  }

  std::vector<const BenchInfo*> selected;
  for (const BenchInfo& info : all) {
    if (Selected(info, opt)) selected.push_back(&info);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benchmark matches the filter (of %zu; see "
                 "--list)\n",
                 all.size());
    return 1;
  }

  const int harness_reps =
      opt.harness_reps > 0 ? opt.harness_reps : (opt.quick ? 1 : 3);
  const int driver_reps = opt.quick ? 1 : Repetitions();

  BenchReport report;
  report.git_sha = GitSha();
  report.timestamp = IsoTimestamp();
  report.quick = opt.quick;
  report.harness_repetitions = harness_reps;
  report.driver_repetitions = driver_reps;

  std::printf("running %zu benchmark(s), %d timed rep(s) each, %d job(s)%s\n",
              selected.size(), harness_reps, exec::ResolveJobs(opt.jobs),
              opt.quick ? " (quick)" : "");
  int index = 0;
  std::vector<std::string> unhealthy;
  for (const BenchInfo* info : selected) {
    ++index;
    std::printf("[%2d/%zu] %-32s ", index, selected.size(), info->name);
    std::fflush(stdout);
    int verdict = 0;
    BenchmarkResult r =
        RunOne(*info, opt, harness_reps, driver_reps, &verdict);
    std::printf("wall %.1f ms  cpu %.1f ms  rss %lld KB%s\n", r.wall_ms.median,
                r.cpu_ms.median, static_cast<long long>(r.peak_rss_kb),
                verdict != 0 ? "  [UNHEALTHY]" : "");
    if (verdict != 0) unhealthy.push_back(info->name);
    report.benchmarks.push_back(std::move(r));
  }

  std::ofstream out(opt.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << report.ToJson() << '\n';
  std::printf("wrote %s (%zu benchmarks, git %s)\n", opt.out.c_str(),
              report.benchmarks.size(), report.git_sha.c_str());
  if (!unhealthy.empty()) {
    std::fprintf(stderr, "%zu driver(s) reported an unhealthy verdict:\n",
                 unhealthy.size());
    for (const std::string& name : unhealthy) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace snapq::bench

int main(int argc, char** argv) { return snapq::bench::Main(argc, argv); }
