#include "data/timeseries.h"

namespace snapq {

RunningStats TimeSeries::Summarize() const {
  RunningStats stats;
  for (double v : values_) stats.Add(v);
  return stats;
}

TimeSeries TimeSeries::Slice(size_t begin, size_t len) const {
  SNAPQ_CHECK(begin + len <= values_.size());
  return TimeSeries(std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                                        values_.begin() + static_cast<std::ptrdiff_t>(begin + len)));
}

}  // namespace snapq
