// The correlation model of §4: node N_i predicts its neighbor N_j's
// measurement as a linear projection of its own,
//
//     x̂_j(t) = a_{i,j} * x_i(t) + b_{i,j},
//
// with (a, b) chosen to minimize the sum-squared error over the cached
// pairs (Lemma 1 = least-squares regression line). When the predictor is
// constant (including the single-pair case) the optimal fit degenerates to
// a = 0, b = mean(x_j).
#ifndef SNAPQ_MODEL_LINEAR_MODEL_H_
#define SNAPQ_MODEL_LINEAR_MODEL_H_

#include <cstddef>

namespace snapq {

/// A fitted line x̂ = a*x + b.
struct LinearModel {
  double a = 0.0;
  double b = 0.0;

  double Estimate(double x) const { return a * x + b; }

  bool operator==(const LinearModel&) const = default;
};

/// Sufficient statistics of a set of (x, y) pairs: everything Lemma 1 and
/// the §4 benefit computations need, in O(1) space. Supports incremental
/// add/remove so cache-manager evaluations stay linear in the cache size.
class RegressionStats {
 public:
  void Add(double x, double y);
  /// Removes a pair previously added. The caller guarantees the pair is in
  /// the set (sums simply subtract; used for sliding-window updates).
  void Remove(double x, double y);

  size_t n() const { return n_; }
  double sum_x() const { return sx_; }
  double sum_y() const { return sy_; }
  double sum_xx() const { return sxx_; }
  double sum_xy() const { return sxy_; }
  double sum_yy() const { return syy_; }

  /// Lemma 1: the sse-optimal (a*, b*). Falls back to a = 0, b = mean(y)
  /// when x is (numerically) constant or n <= 1; returns the zero model for
  /// an empty set.
  LinearModel Fit() const;

  /// Sum over the pairs of (y - a*x - b)^2, from the sufficient statistics.
  double SseSum(const LinearModel& m) const;
  /// Average sse over the pairs: the paper's sse(c, a, b). Zero when empty.
  double AverageSse(const LinearModel& m) const;

  /// Sum of y^2: the numerator of the paper's no_answer_sse(c).
  double NoAnswerSseSum() const { return syy_; }
  /// no_answer_sse(c): average of y^2. Zero when empty.
  double AverageNoAnswerSse() const;

  /// benefit(c, a, b) = no_answer_sse(c) - sse(c, a, b); the expected gain
  /// of answering with the model over not answering at all (per-pair
  /// average, as written in §4).
  double Benefit(const LinearModel& m) const {
    return AverageNoAnswerSse() - AverageSse(m);
  }

  /// Total (un-averaged) benefit: sum y^2 - sum (y - ax - b)^2. For
  /// comparisons among same-length candidates this orders identically to
  /// Benefit(); across lines of different lengths it measures the total
  /// evidence a line carries, which is the well-behaved currency for the
  /// cache manager's cross-line eviction penalty (see cache_manager.cc).
  double BenefitSum(const LinearModel& m) const {
    return NoAnswerSseSum() - SseSum(m);
  }

 private:
  size_t n_ = 0;
  double sx_ = 0.0;
  double sy_ = 0.0;
  double sxx_ = 0.0;
  double sxy_ = 0.0;
  double syy_ = 0.0;
};

}  // namespace snapq

#endif  // SNAPQ_MODEL_LINEAR_MODEL_H_
