// A work-stealing thread pool for the experiment engine. Each worker owns
// a deque: submissions are distributed round-robin across the deques, the
// owner pops from the front, and an idle worker steals from the back of a
// victim's deque — classic Chase-Lev shape, simplified to a mutex per
// deque because pool tasks here are whole simulation trials (milliseconds
// to seconds each), so queue-ops are nowhere near the contention point.
//
// The pool runs *opaque* tasks and knows nothing about determinism; the
// determinism story (per-task metric sinks, index-ordered reduction) lives
// one layer up in parallel_sweep.h. What the pool does guarantee:
//  * every submitted task runs exactly once, on some worker thread;
//  * WaitIdle() returns only after every task submitted so far has
//    finished (not merely been claimed);
//  * a task that throws does not kill the pool — the first exception is
//    captured and rethrown from WaitIdle() on the submitting thread.
#ifndef SNAPQ_EXEC_THREAD_POOL_H_
#define SNAPQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace snapq::exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(Task task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception any task raised (if any).
  void WaitIdle();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  /// Pops the front of `index`'s own queue, else steals from the back of
  /// another worker's queue. Returns false when every queue is empty.
  bool TryGetTask(size_t index, Task* out);
  void OnTaskDone();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Total tasks sitting in queues (not yet claimed). Guarded by wake_mutex_
  // for the sleep/notify handshake; also read optimistically by stealers.
  size_t queued_ = 0;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;

  // Tasks submitted but not yet finished, for WaitIdle.
  size_t unfinished_ = 0;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  size_t next_queue_ = 0;  // round-robin submission cursor
};

}  // namespace snapq::exec

#endif  // SNAPQ_EXEC_THREAD_POOL_H_
