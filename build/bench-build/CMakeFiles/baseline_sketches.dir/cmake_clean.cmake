file(REMOVE_RECURSE
  "../bench/baseline_sketches"
  "../bench/baseline_sketches.pdb"
  "CMakeFiles/baseline_sketches.dir/baseline_sketches.cc.o"
  "CMakeFiles/baseline_sketches.dir/baseline_sketches.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sketches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
