// Counting sketches for loss-resilient in-network aggregation — the
// comparator of the paper's §2 ([3], Considine, Li, Kollios, Byers:
// "Approximate aggregation techniques for sensor databases", ICDE 2004).
//
// A Flajolet-Martin (PCSA) sketch counts distinct items with O(log n) bits
// per bitmap; SUM is sketched by inserting ceil(v) distinct items per node
// (exact for the integer part, documented bias below). Because sketches
// are merged with bitwise OR, duplicates are free: every node can
// broadcast its partial to *all* neighbors (multipath), so a lost edge
// rarely loses data — at the price of approximation error and per-epoch
// re-aggregation of the whole network (the trade-off §2 argues against).
#ifndef SNAPQ_QUERY_SKETCH_H_
#define SNAPQ_QUERY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/node_id.h"

namespace snapq {

/// PCSA distinct-count sketch: `num_bitmaps` 32-bit bitmaps. An item is
/// hashed to one bitmap and sets bit k with probability 2^-(k+1); the
/// count estimate is (m / phi) * 2^(mean lowest-unset-bit index).
class FmSketch {
 public:
  explicit FmSketch(size_t num_bitmaps = 32);

  /// Inserts an item (idempotent: the same key never changes the estimate
  /// twice).
  void InsertItem(uint64_t key);

  /// Bitwise-OR merge (idempotent, commutative, associative). Sketch
  /// shapes must match.
  void Merge(const FmSketch& other);

  /// Estimated number of distinct items inserted.
  double EstimateCount() const;

  size_t num_bitmaps() const { return bitmaps_.size(); }
  const std::vector<uint32_t>& bitmaps() const { return bitmaps_; }

  /// Rebuilds a sketch from its wire form (e.g. a Message::ids payload).
  static FmSketch FromWire(const std::vector<uint32_t>& bitmaps);

  bool operator==(const FmSketch&) const = default;

 private:
  std::vector<uint32_t> bitmaps_;
};

/// SUM sketch over node readings: node i's value v contributes ceil(v)
/// distinct items keyed (i, 0..ceil(v)-1). Values must be non-negative;
/// fractional parts are rounded up (relative bias <= 1/value). The
/// estimate carries the FM error (~1.3/sqrt(num_bitmaps) with 32 bitmaps
/// => ~13% typical relative error).
class SumSketch {
 public:
  explicit SumSketch(size_t num_bitmaps = 32);

  /// Folds node `node`'s reading `value` (>= 0) into the sketch.
  void AddValue(NodeId node, double value);

  void Merge(const SumSketch& other) { sketch_.Merge(other.sketch_); }

  double EstimateSum() const { return sketch_.EstimateCount(); }

  const FmSketch& sketch() const { return sketch_; }
  static SumSketch FromWire(const std::vector<uint32_t>& bitmaps);

 private:
  FmSketch sketch_;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_SKETCH_H_
