#include "data/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snapq {
namespace {

RandomWalkConfig SmallConfig() {
  RandomWalkConfig cfg;
  cfg.num_nodes = 20;
  cfg.num_classes = 4;
  cfg.horizon = 50;
  return cfg;
}

TEST(RandomWalkTest, ShapesMatchConfig) {
  Rng rng(1);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  ASSERT_EQ(data.series.size(), 20u);
  EXPECT_EQ(data.node_class.size(), 20u);
  EXPECT_EQ(data.move_prob.size(), 4u);
  EXPECT_EQ(data.step_size.size(), 20u);
  for (const TimeSeries& s : data.series) {
    EXPECT_EQ(s.size(), 50u);
  }
}

TEST(RandomWalkTest, EveryClassNonEmpty) {
  Rng rng(2);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  std::vector<int> counts(4, 0);
  for (size_t c : data.node_class) {
    ASSERT_LT(c, 4u);
    ++counts[c];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RandomWalkTest, MoveProbsInConfiguredRange) {
  Rng rng(3);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  for (double p : data.move_prob) {
    EXPECT_GE(p, 0.2);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomWalkTest, StepSizesInHalfOpenRange) {
  Rng rng(4);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  for (double s : data.step_size) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RandomWalkTest, InitialValuesInRange) {
  Rng rng(5);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  for (const TimeSeries& s : data.series) {
    EXPECT_GE(s.at(0), 0.0);
    EXPECT_LT(s.at(0), 1000.0);
  }
}

TEST(RandomWalkTest, StepsAreSharedDirectionTimesOwnStepSize) {
  Rng rng(6);
  const RandomWalkData data = GenerateRandomWalk(SmallConfig(), rng);
  // Per tick, within a class, delta / step_size must be identical (-1/0/+1).
  for (size_t t = 1; t < 50; ++t) {
    std::vector<double> class_dir(4, 2.0);  // 2.0 = unset marker
    for (size_t i = 0; i < 20; ++i) {
      const double delta = data.series[i].at(t) - data.series[i].at(t - 1);
      const double dir = delta / data.step_size[i];
      const size_t k = data.node_class[i];
      if (class_dir[k] == 2.0) {
        class_dir[k] = dir;
      } else {
        EXPECT_NEAR(dir, class_dir[k], 1e-9);
      }
    }
    for (double d : class_dir) {
      if (d != 2.0) {
        EXPECT_TRUE(std::abs(d) < 1e-9 || std::abs(std::abs(d) - 1.0) < 1e-9);
      }
    }
  }
}

TEST(RandomWalkTest, SameClassPairsAreExactlyCollinear) {
  // The core correlation property the models exploit: same-class series are
  // affine transforms of one another.
  Rng rng(7);
  RandomWalkConfig cfg = SmallConfig();
  cfg.num_classes = 1;
  const RandomWalkData data = GenerateRandomWalk(cfg, rng);
  const TimeSeries& a = data.series[0];
  const TimeSeries& b = data.series[1];
  const double scale = data.step_size[1] / data.step_size[0];
  const double offset = b.at(0) - scale * a.at(0);
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_NEAR(b.at(t), scale * a.at(t) + offset, 1e-9);
  }
}

TEST(RandomWalkTest, DeterministicForSameSeed) {
  Rng r1(42), r2(42);
  const RandomWalkData a = GenerateRandomWalk(SmallConfig(), r1);
  const RandomWalkData b = GenerateRandomWalk(SmallConfig(), r2);
  for (size_t i = 0; i < a.series.size(); ++i) {
    for (size_t t = 0; t < a.series[i].size(); ++t) {
      ASSERT_DOUBLE_EQ(a.series[i].at(t), b.series[i].at(t));
    }
  }
}

TEST(RandomWalkTest, SingleNodeSingleClass) {
  Rng rng(9);
  RandomWalkConfig cfg;
  cfg.num_nodes = 1;
  cfg.num_classes = 1;
  cfg.horizon = 10;
  const RandomWalkData data = GenerateRandomWalk(cfg, rng);
  EXPECT_EQ(data.series.size(), 1u);
  EXPECT_EQ(data.series[0].size(), 10u);
}

TEST(RandomWalkDeathTest, MoreClassesThanNodesAborts) {
  Rng rng(10);
  RandomWalkConfig cfg;
  cfg.num_nodes = 2;
  cfg.num_classes = 5;
  EXPECT_DEATH(GenerateRandomWalk(cfg, rng), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
