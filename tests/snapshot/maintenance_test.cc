// Maintenance (§5.1) tests with failure injection: representative death,
// data drift forcing re-election, lone-active merging, energy-based
// resignation, and the six-message maintenance bound.
#include "snapshot/maintenance.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  config.heartbeat_timeout = 2;
  config.heartbeat_miss_limit = 1;  // deterministic single-round failover in tests
  return config;
}

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  SnapshotConfig config;

  explicit Net(size_t n, SimConfig sim_config = {},
               SnapshotConfig cfg = TestConfig())
      : config(cfg) {
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({0.05 * static_cast<double>(i), 0.0});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, 10.0),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), cfg, 700 + i));
      agents.back()->Install();
    }
  }

  void TeachAllPairs(double base) {
    for (NodeId i = 0; i < agents.size(); ++i) {
      agents[i]->SetMeasurement(base + i);
    }
    for (NodeId i = 0; i < agents.size(); ++i) {
      for (NodeId j = 0; j < agents.size(); ++j) {
        if (i == j) continue;
        const double vi = agents[i]->measurement();
        const double vj = agents[j]->measurement();
        agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
        agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
      }
    }
  }

  void Elect() { RunGlobalElection(*sim, agents, sim->now(), config); }

  void Tick() {
    for (auto& a : agents) a->MaintenanceTick();
    sim->RunAll();
  }
};

TEST(MaintenanceTest, HealthyNetworkStaysStable) {
  Net net(6);
  net.TeachAllPairs(10.0);
  net.Elect();
  const SnapshotView before = CaptureSnapshot(net.agents);
  ASSERT_EQ(before.CountActive(), 1u);
  net.Tick();
  const SnapshotView after = CaptureSnapshot(net.agents);
  EXPECT_EQ(after.CountActive(), 1u);
  EXPECT_EQ(after.CountSpurious(), 0u);
}

TEST(MaintenanceTest, HeartbeatsFlowFromPassiveToRep) {
  Net net(4);
  net.TeachAllPairs(10.0);
  net.Elect();
  const uint64_t hb_before = net.sim->metrics().sent(MessageType::kHeartbeat);
  const uint64_t reply_before =
      net.sim->metrics().sent(MessageType::kHeartbeatReply);
  net.Tick();
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kHeartbeat), hb_before + 3);
  // One *batched* broadcast answers all three heartbeats.
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kHeartbeatReply),
            reply_before + 1);
}

TEST(MaintenanceTest, RepresentativeDeathTriggersReelection) {
  Net net(5);
  net.TeachAllPairs(10.0);
  net.Elect();
  const SnapshotView view = CaptureSnapshot(net.agents);
  ASSERT_EQ(view.CountActive(), 1u);
  // Find and kill the representative.
  NodeId rep = kInvalidNode;
  for (NodeId i = 0; i < 5; ++i) {
    if (view.node(i).mode == NodeMode::kActive) rep = i;
  }
  net.sim->Kill(rep);
  // First round: heartbeats go unanswered -> timeout -> local re-election.
  net.Tick();
  const SnapshotView healed = CaptureSnapshot(net.agents);
  EXPECT_EQ(healed.CountUndefined(), 0u);
  // Everyone alive ends up represented again (or self-represented).
  size_t live_active = healed.CountActive();
  EXPECT_GE(live_active, 1u);
  for (NodeId i = 0; i < 5; ++i) {
    if (i == rep) continue;
    if (healed.node(i).mode == NodeMode::kPassive) {
      const NodeId r = healed.node(i).representative;
      EXPECT_NE(r, rep);
      EXPECT_TRUE(net.sim->alive(r));
    }
  }
}

TEST(MaintenanceTest, ModelDriftForcesReelection) {
  Net net(3);
  net.TeachAllPairs(10.0);
  net.Elect();
  const SnapshotView view = CaptureSnapshot(net.agents);
  ASSERT_EQ(view.CountActive(), 1u);
  // Shift every PASSIVE node's value violently so the rep's estimate
  // misses by far more than T.
  for (NodeId i = 0; i < 3; ++i) {
    if (view.node(i).mode == NodeMode::kPassive) {
      net.agents[i]->SetMeasurement(10000.0 + i);
    }
  }
  net.Tick();
  const SnapshotView healed = CaptureSnapshot(net.agents);
  EXPECT_EQ(healed.CountUndefined(), 0u);
  // Old representations were dropped: the drifted nodes re-elected. With
  // everyone drifted differently, models no longer hold and nodes go
  // ACTIVE (self-represented).
  EXPECT_GT(healed.CountActive(), 1u);
}

TEST(MaintenanceTest, LoneActivesMergeOverRounds) {
  // Start everyone ACTIVE with no training, then teach models and let
  // maintenance rounds merge lone actives under a shared representative.
  Net net(4);
  for (auto& a : net.agents) a->SetMeasurement(5.0);
  net.Elect();  // no models -> everyone ACTIVE
  ASSERT_EQ(CaptureSnapshot(net.agents).CountActive(), 4u);
  net.TeachAllPairs(5.0);
  net.Tick();  // lone actives invite, one wins the pairwise ties
  net.Tick();  // stragglers merge in a second round
  const SnapshotView merged = CaptureSnapshot(net.agents);
  EXPECT_LT(merged.CountActive(), 4u);
  EXPECT_EQ(merged.CountUndefined(), 0u);
}

TEST(MaintenanceTest, LowBatteryRepresentativeResigns) {
  SimConfig sim_config;
  sim_config.energy.initial_battery = 100.0;
  SnapshotConfig cfg = TestConfig();
  cfg.resign_battery_fraction = 0.5;  // resign below 50 units
  Net net(4, sim_config, cfg);
  net.TeachAllPairs(10.0);
  net.Elect();
  SnapshotView view = CaptureSnapshot(net.agents);
  ASSERT_EQ(view.CountActive(), 1u);
  NodeId rep = kInvalidNode;
  for (NodeId i = 0; i < 4; ++i) {
    if (view.node(i).mode == NodeMode::kActive) rep = i;
  }
  // Drain the representative below the resignation threshold.
  net.sim->Drain(rep, net.sim->battery(rep).remaining() - 30.0);
  const uint64_t resigns_before =
      net.sim->metrics().sent(MessageType::kResign);
  net.Tick();
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kResign),
            resigns_before + 1);
  EXPECT_TRUE(net.agents[rep]->resigned());
  EXPECT_TRUE(net.agents[rep]->represents().empty());
  // Released nodes re-elected somebody else (or themselves).
  const SnapshotView healed = CaptureSnapshot(net.agents);
  for (NodeId i = 0; i < 4; ++i) {
    if (i == rep) continue;
    EXPECT_NE(healed.node(i).representative, rep) << "node " << i;
  }
}

TEST(MaintenanceTest, SixMessageBoundPerRound) {
  // §5.1: per maintained node, heartbeat + reply + invitation + cand list
  // + accept + ack = at most six messages per update. A representative
  // additionally answers one heartbeat per node it represents, so its
  // budget is six plus its represented-set size.
  Net net(8);
  net.TeachAllPairs(20.0);
  net.Elect();
  net.sim->ResetPerNodeCounters();
  net.Tick();
  for (NodeId i = 0; i < 8; ++i) {
    const size_t replies = net.agents[i]->represents().size();
    EXPECT_LE(net.sim->messages_sent_by(i), 6u + replies) << "node " << i;
    if (net.agents[i]->mode() == NodeMode::kPassive) {
      EXPECT_LE(net.sim->messages_sent_by(i), 6u) << "node " << i;
    }
  }
}

TEST(MaintenanceTest, RotationStepsDownAfterConfiguredRounds) {
  SnapshotConfig cfg = TestConfig();
  cfg.rotation_rounds = 2;
  cfg.rotation_cooldown = 2;
  Net net(4, {}, cfg);
  net.TeachAllPairs(10.0);
  net.Elect();
  SnapshotView view = CaptureSnapshot(net.agents);
  ASSERT_EQ(view.CountActive(), 1u);
  NodeId rep = kInvalidNode;
  for (NodeId i = 0; i < 4; ++i) {
    if (view.node(i).mode == NodeMode::kActive) rep = i;
  }
  const uint64_t resigns_before =
      net.sim->metrics().sent(MessageType::kResign);
  net.Tick();  // round 1: rep serves
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kResign), resigns_before);
  net.Tick();  // round 2: rotation_rounds reached -> step down
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kResign),
            resigns_before + 1);
  EXPECT_TRUE(net.agents[rep]->represents().empty());
  EXPECT_GT(net.agents[rep]->rotation_cooldown_remaining(), 0);
  // Released members re-elect a DIFFERENT representative (the old one is
  // on cooldown and does not offer candidacy).
  const SnapshotView healed = CaptureSnapshot(net.agents);
  EXPECT_EQ(healed.CountUndefined(), 0u);
  for (NodeId i = 0; i < 4; ++i) {
    if (i == rep) continue;
    if (healed.node(i).mode == NodeMode::kPassive) {
      EXPECT_NE(healed.node(i).representative, rep) << "node " << i;
    }
  }
}

TEST(MaintenanceTest, RotationCooldownExpiresAndNodeServesAgain) {
  SnapshotConfig cfg = TestConfig();
  cfg.rotation_rounds = 1;
  cfg.rotation_cooldown = 1;
  Net net(3, {}, cfg);
  net.TeachAllPairs(10.0);
  net.Elect();
  ASSERT_EQ(CaptureSnapshot(net.agents).CountActive(), 1u);
  // Across many rounds with aggressive rotation, more than one node gets
  // to serve as a representative.
  std::set<NodeId> servers;
  for (int round = 0; round < 8; ++round) {
    net.Tick();
    for (NodeId i = 0; i < 3; ++i) {
      if (!net.agents[i]->represents().empty()) servers.insert(i);
    }
  }
  EXPECT_GE(servers.size(), 2u);
}

TEST(MaintenanceTest, RotationDisabledByDefault) {
  Net net(4);
  net.TeachAllPairs(10.0);
  net.Elect();
  const uint64_t resigns_before =
      net.sim->metrics().sent(MessageType::kResign);
  for (int round = 0; round < 6; ++round) net.Tick();
  EXPECT_EQ(net.sim->metrics().sent(MessageType::kResign), resigns_before);
  EXPECT_EQ(CaptureSnapshot(net.agents).CountActive(), 1u);
}

TEST(MaintenanceDriverTest, SchedulesRoundsAndReportsStats) {
  Net net(5);
  net.TeachAllPairs(10.0);
  net.Elect();
  MaintenanceDriver driver(net.sim.get(), &net.agents, /*interval=*/50);
  std::vector<MaintenanceRoundStats> rounds;
  driver.ScheduleRounds(net.sim->now() + 10, net.sim->now() + 160,
                        [&rounds](const MaintenanceRoundStats& s) {
                          rounds.push_back(s);
                        });
  net.sim->RunAll();
  ASSERT_EQ(rounds.size(), 3u);
  for (const auto& r : rounds) {
    EXPECT_EQ(r.snapshot_size, 1u);
    EXPECT_EQ(r.num_spurious, 0u);
    EXPECT_LE(r.avg_messages_per_node, 6.0);
  }
  EXPECT_LT(rounds[0].round_start, rounds[1].round_start);
}

TEST(MaintenanceDriverDeathTest, RejectsNonPositiveInterval) {
  Net net(2);
  EXPECT_DEATH(MaintenanceDriver(net.sim.get(), &net.agents, 0),
               "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
