// Failure injection: sever one protocol message type at a time and verify
// the election's recovery rules leave the network in a safe, settled
// state. The key protocol safety property throughout: no live node ends
// UNDEFINED, and under the snapshot rule every live node still has a
// responder (itself or a live representative).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 6;
  config.rule4_hard_cap = 12;
  config.heartbeat_miss_limit = 1;
  return config;
}

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  explicit Net(size_t n) {
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({0.05 * static_cast<double>(i), 0.0});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, 10.0),
                                      SimConfig{});
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<SnapshotAgent>(
          i, sim.get(), TestConfig(), 500 + i));
      agents.back()->Install();
      agents.back()->SetMeasurement(40.0 + i);
    }
    // All-pairs exact models.
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double vi = agents[i]->measurement();
        const double vj = agents[j]->measurement();
        agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
        agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
      }
    }
  }

  ElectionStats Elect() {
    return RunGlobalElection(*sim, agents, sim->now(), TestConfig());
  }

  void ExpectSafeOutcome(const ElectionStats& stats) {
    EXPECT_EQ(stats.num_undefined, 0u);
    EXPECT_EQ(stats.num_active + stats.num_passive, agents.size());
    const SnapshotView view = CaptureSnapshot(agents);
    for (NodeId i = 0; i < agents.size(); ++i) {
      EXPECT_NE(view.ResponderFor(i), kInvalidNode) << "node " << i;
    }
  }
};

TEST(FailureInjectionTest, AllInvitationsLost) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kInvitation, 1.0);
  const ElectionStats stats = net.Elect();
  // Nobody hears anybody: every node represents itself.
  EXPECT_EQ(stats.num_active, 10u);
  net.ExpectSafeOutcome(stats);
}

TEST(FailureInjectionTest, AllCandListsLost) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kCandList, 1.0);
  const ElectionStats stats = net.Elect();
  // No offers arrive: everyone self-represents (Rule-1).
  EXPECT_EQ(stats.num_active, 10u);
  net.ExpectSafeOutcome(stats);
}

TEST(FailureInjectionTest, AllAcceptsLostHealedByStayActive) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kAccept, 1.0);
  const ElectionStats stats = net.Elect();
  // The representative never hears the accepts, but the Rule-3 StayActive
  // notification heals the membership. The winner's own (lost) accept
  // leaves at most one extra lone active — its chosen representative never
  // learned of it.
  EXPECT_LE(stats.num_active, 2u);
  net.ExpectSafeOutcome(stats);
  // The next maintenance round merges the lone active under the winner
  // (StayActive healing again substitutes for the severed accepts).
  for (auto& a : net.agents) a->MaintenanceTick();
  net.sim->RunAll();
  EXPECT_EQ(CaptureSnapshot(net.agents).CountActive(), 1u);
}

TEST(FailureInjectionTest, AllStayActivesLost) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kStayActive, 1.0);
  const ElectionStats stats = net.Elect();
  // Rule-3 can never complete its handshake... but members still hear the
  // representative's RepAck broadcasts triggered by Accepts? No: acks are
  // only triggered by StayActive. Everyone times out via Rule-4.
  EXPECT_EQ(stats.num_undefined, 0u);
  net.ExpectSafeOutcome(stats);
}

TEST(FailureInjectionTest, AllRepAcksLost) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kRepAck, 1.0);
  const ElectionStats stats = net.Elect();
  // No acknowledgment ever arrives: Rule-4 forces every would-be-passive
  // node ACTIVE ("Lost acknowledgments are handled by Rule-4").
  EXPECT_EQ(stats.num_undefined, 0u);
  EXPECT_EQ(stats.num_active, 10u);
  net.ExpectSafeOutcome(stats);
}

TEST(FailureInjectionTest, AllRecallsLostCreatesBoundedSpurious) {
  Net net(10);
  net.sim->SetTypeLoss(MessageType::kRecall, 1.0);
  const ElectionStats stats = net.Elect();
  net.ExpectSafeOutcome(stats);
  // Lost Rule-2 recalls are exactly the paper's spurious-representative
  // mechanism (Fig 13); the epoch-stamped RepAck self-correction bounds
  // them, and query-time filtering hides the rest.
  EXPECT_LE(stats.num_spurious, 10u);
}

TEST(FailureInjectionTest, HeartbeatsLostTriggersReelectionNotDeadlock) {
  Net net(6);
  const ElectionStats stats = net.Elect();
  ASSERT_EQ(stats.num_active, 1u);
  net.sim->SetTypeLoss(MessageType::kHeartbeat, 1.0);
  // Three maintenance rounds: every heartbeat lost -> timeout -> local
  // re-elections (which succeed; only heartbeats are severed).
  for (int round = 0; round < 3; ++round) {
    for (auto& a : net.agents) a->MaintenanceTick();
    net.sim->RunAll();
  }
  const SnapshotView view = CaptureSnapshot(net.agents);
  EXPECT_EQ(view.CountUndefined(), 0u);
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_NE(view.ResponderFor(i), kInvalidNode);
  }
}

TEST(FailureInjectionTest, HeartbeatRepliesLostToleratedThenReelected) {
  Net net(6);
  net.Elect();
  net.sim->SetTypeLoss(MessageType::kHeartbeatReply, 1.0);
  for (int round = 0; round < 3; ++round) {
    for (auto& a : net.agents) a->MaintenanceTick();
    net.sim->RunAll();
  }
  const SnapshotView view = CaptureSnapshot(net.agents);
  EXPECT_EQ(view.CountUndefined(), 0u);
}

TEST(FailureInjectionTest, NodeDiesMidElection) {
  Net net(8);
  // Kill the would-be winner right after the invitation phase.
  net.sim->ScheduleAt(1, [&net] { net.sim->Kill(7); });
  for (auto& a : net.agents) a->BeginElection(0);
  net.sim->RunAll();
  const SnapshotView view = CaptureSnapshot(net.agents);
  // Some nodes may have accepted node 7 before it died and never heard
  // back: Rule-4 turns them ACTIVE. Nobody is left UNDEFINED.
  EXPECT_EQ(view.CountUndefined(), 0u);
  for (NodeId i = 0; i < 7; ++i) {
    if (view.node(i).mode == NodeMode::kPassive) {
      EXPECT_TRUE(net.sim->alive(view.node(i).representative));
    }
  }
}

TEST(FailureInjectionTest, HalfTheNetworkDiesMidElection) {
  Net net(12);
  net.sim->ScheduleAt(2, [&net] {
    for (NodeId i = 0; i < 6; ++i) net.sim->Kill(2 * i);
  });
  for (auto& a : net.agents) a->BeginElection(0);
  net.sim->RunAll();
  const SnapshotView view = CaptureSnapshot(net.agents);
  size_t live_undefined = 0;
  for (NodeId i = 0; i < 12; ++i) {
    if (net.sim->alive(i) && view.node(i).mode == NodeMode::kUndefined) {
      ++live_undefined;
    }
  }
  EXPECT_EQ(live_undefined, 0u);
}

}  // namespace
}  // namespace snapq
