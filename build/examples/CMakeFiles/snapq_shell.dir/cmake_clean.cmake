file(REMOVE_RECURSE
  "CMakeFiles/snapq_shell.dir/snapq_shell.cpp.o"
  "CMakeFiles/snapq_shell.dir/snapq_shell.cpp.o.d"
  "snapq_shell"
  "snapq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
