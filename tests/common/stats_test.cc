#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace snapq {
namespace {

TEST(RunningStatsTest, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);          // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(SampleSetTest, EmptyReturnsZeroes) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SampleSetTest, PercentilesOfKnownSet) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(10), 1.4);  // interpolated
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(SampleSetTest, AddAfterPercentileResorts) {
  SampleSet s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
}

TEST(SampleSetTest, SingleElement) {
  SampleSet s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(37.5), 7.0);
}

}  // namespace
}  // namespace snapq
