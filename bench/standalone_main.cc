// main() for the per-figure driver binaries: each one links exactly one
// SNAPQ_BENCHMARK translation unit plus this file, so StandaloneMain runs
// that single benchmark with full repetitions and sidecars — the
// pre-registry behavior of `./build/bench/fig06_classes` et al.
#include "bench_registry.h"

int main(int argc, char** argv) {
  return snapq::bench::StandaloneMain(argc, argv);
}
