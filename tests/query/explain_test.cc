// EXPLAIN / EXPLAIN ANALYZE tests: plan-only side-effect freedom, the
// estimated-vs-actual cost join, per-node provenance rows (reporter,
// estimate flag, epoch, model error vs threshold), the frozen
// query_explain journal event and the explain.* metrics.
#include "query/explain.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "query/parser.h"
#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  config.heartbeat_timeout = 2;
  config.heartbeat_miss_limit = 1;
  return config;
}

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  std::unique_ptr<QueryExecutor> executor;

  Net(std::vector<Point> positions, double range, SimConfig sim_config = {}) {
    const size_t n = positions.size();
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, range),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), TestConfig(),
                                          900 + i));
      agents.back()->Install();
    }
    executor = std::make_unique<QueryExecutor>(
        sim.get(), &agents,
        Catalog::WithStandardRegions(Rect::UnitSquare()));
  }

  void Teach(NodeId rep, NodeId target) {
    const double vi = agents[rep]->measurement();
    const double vj = agents[target]->measurement();
    agents[rep]->models().cache().Observe(target, vi - 1, vj - 1, 0);
    agents[rep]->models().cache().Observe(target, vi + 1, vj + 1, 0);
  }

  void TeachAllPairs() {
    for (NodeId i = 0; i < agents.size(); ++i) {
      for (NodeId j = 0; j < agents.size(); ++j) {
        if (i != j) Teach(i, j);
      }
    }
  }

  void Elect() { RunGlobalElection(*sim, agents, sim->now(), TestConfig()); }
};

/// Four nodes in the unit square, all in range; values 10 + i. After
/// TeachAllPairs + Elect, node 3 represents everyone.
Net MeshNet(SimConfig sim_config = {}) {
  Net net({{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}}, 10.0,
          sim_config);
  for (NodeId i = 0; i < 4; ++i) {
    net.agents[i]->SetMeasurement(10.0 + i);
  }
  return net;
}

TEST(ExplainTest, PlanOnlyDoesNotExecuteOrChargeOrJournal) {
  SimConfig sim_config;
  sim_config.energy.initial_battery = 10.0;
  Net net({{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}}, 10.0,
          sim_config);
  for (NodeId i = 0; i < 4; ++i) net.agents[i]->SetMeasurement(10.0 + i);
  net.TeachAllPairs();
  net.Elect();
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      net.sim->journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));
  const std::vector<double> before = {
      net.sim->battery(1).remaining(), net.sim->battery(3).remaining()};

  ExecutionOptions options;
  options.charge_energy = true;
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN SELECT avg(value) FROM sensors USE SNAPSHOT", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->analyze);
  EXPECT_FALSE(report->actual.has_value());
  EXPECT_FALSE(report->result.has_value());
  // Side-effect free: no journal events, no battery drain, no query
  // counters.
  EXPECT_TRUE(sink->lines().empty());
  EXPECT_DOUBLE_EQ(net.sim->battery(1).remaining(), before[0]);
  EXPECT_DOUBLE_EQ(net.sim->battery(3).remaining(), before[1]);
  EXPECT_EQ(net.sim->registry().GetCounter("query.executions")->value(), 0u);
  // But the estimate is real: rep 3 + sink 0 participate, one message.
  EXPECT_EQ(report->estimated.responders, 1u);
  EXPECT_EQ(report->estimated.participants, 2u);
  EXPECT_EQ(report->estimated.messages, 1u);
  EXPECT_GT(report->estimated.energy, 0.0);
}

TEST(ExplainTest, AnalyzeExecutesAndJoinsEstimatedVsActual) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  ExecutionOptions options;
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN ANALYZE SELECT avg(value) FROM sensors USE SNAPSHOT",
      options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->analyze);
  ASSERT_TRUE(report->actual.has_value());
  ASSERT_TRUE(report->result.has_value());
  ASSERT_TRUE(report->result->aggregate.has_value());
  EXPECT_NEAR(*report->result->aggregate, 11.5, 1e-6);
  // Stable network: the plan-time estimate matches the actuals exactly.
  EXPECT_EQ(report->estimated.participants, report->actual->participants);
  EXPECT_EQ(report->estimated.messages, report->actual->messages);
  EXPECT_EQ(report->estimated.covered, report->actual->covered);
  EXPECT_EQ(net.sim->registry().GetCounter("query.executions")->value(), 1u);
  EXPECT_EQ(
      net.sim->registry().GetCounter("explain.analyze.runs")->value(), 1u);
}

TEST(ExplainTest, ProvenanceRowsNameReporterEstimateAndEpoch) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  ASSERT_EQ(net.agents[3]->mode(), NodeMode::kActive);
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN ANALYZE SELECT loc, value FROM sensors USE SNAPSHOT", {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 4u);
  EXPECT_EQ(report->matching_nodes, 4u);
  for (const ExplainNodeRow& row : report->rows) {
    EXPECT_TRUE(row.covered) << "node " << row.node;
    EXPECT_EQ(row.reporter, 3u);
    if (row.node == 3) {
      EXPECT_FALSE(row.estimated);
      EXPECT_FALSE(row.model_error.has_value());
      // Self-reports display the node's own epoch, not the sentinel.
      EXPECT_EQ(row.epoch, net.agents[3]->epoch());
    } else {
      EXPECT_TRUE(row.estimated);
      ASSERT_TRUE(row.model_error.has_value());
      EXPECT_NEAR(*row.model_error, 0.0, 1e-9);  // exact models
      EXPECT_TRUE(row.within_threshold);
      EXPECT_GE(row.depth, 0);
    }
  }
  EXPECT_EQ(report->EstimatedRows(), 3u);
}

TEST(ExplainTest, DriftedModelFlaggedAgainstPerQueryThreshold) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  // Drift node 1 by 2.5 after model training: with the sse metric the
  // distance is 6.25 — inside the default T=1.0? No: flagged. A per-query
  // ERROR 10 threshold admits it again.
  net.agents[1]->SetMeasurement(11.0 + 2.5);
  const Result<ExplainReport> strict = ExplainSql(
      *net.executor,
      "EXPLAIN SELECT loc, value FROM sensors USE SNAPSHOT", {});
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->threshold_overridden);
  EXPECT_DOUBLE_EQ(strict->threshold, 1.0);
  const Result<ExplainReport> loose = ExplainSql(
      *net.executor,
      "EXPLAIN SELECT loc, value FROM sensors USE SNAPSHOT ERROR 10", {});
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->threshold_overridden);
  EXPECT_DOUBLE_EQ(loose->threshold, 10.0);
  for (const auto& rows : {&strict->rows, &loose->rows}) {
    for (const ExplainNodeRow& row : *rows) {
      if (row.node != 1) continue;
      ASSERT_TRUE(row.model_error.has_value());
      EXPECT_NEAR(*row.model_error, -2.5, 1e-6);
      EXPECT_NEAR(row.model_distance, 6.25, 1e-6);  // sse
    }
  }
  const auto flagged = [](const ExplainReport& r, NodeId node) {
    for (const ExplainNodeRow& row : r.rows) {
      if (row.node == node) return !row.within_threshold;
    }
    return false;
  };
  EXPECT_TRUE(flagged(*strict, 1));
  EXPECT_FALSE(flagged(*loose, 1));
}

TEST(ExplainTest, UncoveredNodesAppearWithoutReporter) {
  // Chain 0-1-2 with router 1 dead: node 2 matches but cannot answer.
  Net net({{0.1, 0.5}, {0.45, 0.5}, {0.8, 0.5}}, 0.4);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(5.0);
  net.sim->Kill(1);
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN ANALYZE SELECT value FROM sensors "
      "WHERE loc IN RECT(0.7, 0.0, 1.0, 1.0)", {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 1u);
  EXPECT_EQ(report->rows[0].node, 2u);
  EXPECT_FALSE(report->rows[0].covered);
  EXPECT_EQ(report->rows[0].reporter, kInvalidNode);
  EXPECT_EQ(report->actual->covered, 0u);
}

TEST(ExplainTest, EmitsFrozenQueryExplainJournalEvent) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      net.sim->journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));
  ASSERT_TRUE(ExplainSql(*net.executor,
                         "EXPLAIN ANALYZE SELECT avg(value) FROM sensors "
                         "USE SNAPSHOT",
                         {})
                  .ok());
  std::optional<obs::JournalEvent> explain_event;
  for (const std::string& line : sink->lines()) {
    std::optional<obs::JournalEvent> parsed = obs::JournalEvent::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (parsed->name() == "query_explain") explain_event = std::move(parsed);
  }
  ASSERT_TRUE(explain_event.has_value()) << "query_explain never emitted";
  EXPECT_EQ(explain_event->GetBool("use_snapshot"), true);
  EXPECT_EQ(explain_event->GetInt("matching"), 4);
  EXPECT_EQ(explain_event->GetInt("covered"), 4);
  EXPECT_EQ(explain_event->GetInt("estimated_rows"), 3);
  EXPECT_EQ(explain_event->GetInt("est_participants"),
            explain_event->GetInt("act_participants"));
  EXPECT_TRUE(explain_event->GetNum("threshold").has_value());
  EXPECT_TRUE(explain_event->GetNum("max_abs_error").has_value());
}

TEST(ExplainTest, ReportRendersPlanCostAndProvenanceSections) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  ExecutionOptions options;
  options.charge_energy = true;
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN ANALYZE SELECT avg(value) FROM sensors "
      "WHERE loc IN RECT(0.0, 0.0, 1.0, 0.5) USE SNAPSHOT",
      options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string text = report->ToString();
  for (const char* needle :
       {"EXPLAIN ANALYZE", "predicate:", "literal RECT", "strategy:",
        "snapshot fan-out", "cost", "estimated", "actual", "provenance",
        "reporter", "d(x,x^)", "answer:"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n" << text;
  }
}

TEST(ExplainTest, BareQueryIsExplainedAsPlanOnly) {
  Net net = MeshNet();
  const Result<ExplainReport> report = ExplainSql(
      *net.executor, "SELECT value FROM sensors", {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->analyze);
  EXPECT_EQ(report->estimated.responders, 4u);
}

TEST(ExplainTest, ErrorsSurfaceAsStatusNotCrash) {
  Net net = MeshNet();
  EXPECT_FALSE(ExplainSql(*net.executor, "EXPLAIN", {}).ok());
  EXPECT_FALSE(
      ExplainSql(*net.executor, "EXPLAIN EXPLAIN SELECT value FROM sensors",
                 {})
          .ok());
  EXPECT_FALSE(
      ExplainSql(*net.executor, "EXPLAIN SELECT humidity FROM sensors", {})
          .ok());
  EXPECT_FALSE(
      ExplainSql(*net.executor,
                 "EXPLAIN SELECT value FROM sensors WHERE loc IN MOON", {})
          .ok());
  EXPECT_FALSE(ExplainSql(*net.executor,
                          "EXPLAIN ANALYZE SELECT value FROM sensors "
                          "USE SNAPSHOT ERROR -3",
                          {})
                   .ok());
}

TEST(ExplainTest, RegionSourceNamesTheCatalogRegion) {
  Net net = MeshNet();
  const Result<ExplainReport> report = ExplainSql(
      *net.executor,
      "EXPLAIN SELECT value FROM sensors WHERE loc IN SOUTH_HALF", {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->region_source, "region SOUTH_HALF");
  EXPECT_EQ(report->matching_nodes, 4u);  // all nodes at y=0.1
}

}  // namespace
}  // namespace snapq
