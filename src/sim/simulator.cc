#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace snapq {

Simulator::Simulator(std::vector<Point> positions, std::vector<double> ranges,
                     const SimConfig& config)
    : links_(std::move(positions), std::move(ranges),
             config.loss_probability),
      config_(config),
      metrics_(&registry_),
      rng_(config.seed) {
  const size_t n = links_.num_nodes();
  batteries_.assign(n, Battery(config_.energy.initial_battery));
  handlers_.resize(n);
  sent_by_.assign(n, 0);
}

void Simulator::SetHandler(NodeId id, MessageHandler handler) {
  SNAPQ_CHECK_LT(id, handlers_.size());
  handlers_[id] = std::move(handler);
}

void Simulator::ScheduleAt(Time t, std::function<void()> action) {
  queue_.ScheduleAt(t, std::move(action));
}

void Simulator::ScheduleAfter(Time delta, std::function<void()> action) {
  SNAPQ_CHECK_GE(delta, 0);
  queue_.ScheduleAt(queue_.now() + delta, std::move(action));
}

bool Simulator::Send(const Message& msg) {
  const NodeId from = msg.from;
  SNAPQ_CHECK_LT(from, num_nodes());
  if (!batteries_[from].alive()) return false;
  // A node may die on its final transmission; the message still goes out.
  batteries_[from].Consume(config_.energy.tx_cost);
  metrics_.CountSent(msg.type);
  ++sent_by_[from];
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{TraceEvent::Kind::kSend, queue_.now(),
                              msg.type, from, kInvalidNode, msg.epoch});
  }

  for (NodeId receiver : links_.Reachable(from)) {
    const bool addressed =
        msg.to == kBroadcastId || msg.to == receiver;
    bool snooped = false;
    if (!addressed) {
      // Unaddressed neighbors overhear with the snoop probability.
      if (config_.snoop_probability <= 0.0 ||
          !rng_.Bernoulli(config_.snoop_probability)) {
        continue;
      }
      snooped = true;
    }
    const double type_loss = type_loss_[static_cast<size_t>(msg.type)];
    if (links_.SampleLoss(from, receiver, rng_) ||
        (type_loss > 0.0 && rng_.Bernoulli(type_loss))) {
      if (addressed) metrics_.CountLost(msg.type);
      if (trace_ != nullptr) {
        trace_->Record(TraceEvent{TraceEvent::Kind::kLoss, queue_.now(),
                                  msg.type, from, receiver, msg.epoch});
      }
      continue;
    }
    // Copy the message into the delivery event; the sender may mutate or
    // destroy its copy after Send returns.
    Message copy = msg;
    queue_.ScheduleAt(queue_.now(),
                      [this, receiver, m = std::move(copy), snooped]() {
                        Deliver(receiver, m, snooped);
                      });
  }
  return true;
}

void Simulator::Deliver(NodeId to, const Message& msg, bool snooped) {
  if (!batteries_[to].alive()) return;
  batteries_[to].Consume(config_.energy.rx_cost);
  if (snooped) {
    metrics_.CountSnooped(msg.type);
  } else {
    metrics_.CountDelivered(msg.type);
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{snooped ? TraceEvent::Kind::kSnoop
                                      : TraceEvent::Kind::kDeliver,
                              queue_.now(), msg.type, msg.from, to,
                              msg.epoch});
  }
  if (handlers_[to]) {
    handlers_[to](msg, snooped);
  }
}

void Simulator::ChargeCacheOp(NodeId id) {
  SNAPQ_CHECK_LT(id, num_nodes());
  batteries_[id].Consume(config_.energy.cache_op_cost);
  metrics_.CountCacheOp();
}

void Simulator::ResetPerNodeCounters() {
  sent_by_.assign(sent_by_.size(), 0);
}

}  // namespace snapq
