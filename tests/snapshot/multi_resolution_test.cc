#include "snapshot/multi_resolution.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

SnapshotView ViewWithActives(size_t total, size_t active) {
  std::vector<SnapshotView::NodeInfo> infos(total);
  for (size_t i = 0; i < total; ++i) {
    infos[i].mode = i < active ? NodeMode::kActive : NodeMode::kPassive;
    infos[i].representative = i < active ? static_cast<NodeId>(i) : 0;
  }
  return SnapshotView(std::move(infos));
}

TEST(MultiResolutionTest, EmptyRegistryResolvesNothing) {
  MultiResolutionRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.Resolve(1.0), nullptr);
  EXPECT_EQ(registry.Tightest(), nullptr);
}

TEST(MultiResolutionTest, ResolvePicksLargestThresholdAtMostQuery) {
  MultiResolutionRegistry registry;
  registry.Register(0.1, ViewWithActives(10, 8));
  registry.Register(1.0, ViewWithActives(10, 4));
  registry.Register(5.0, ViewWithActives(10, 1));

  // Query tolerating 2.0: snapshot for T=1.0 is the cheapest valid one.
  const SnapshotView* v = registry.Resolve(2.0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->CountActive(), 4u);

  // Exactly at a registered threshold: that snapshot qualifies.
  EXPECT_EQ(registry.Resolve(5.0)->CountActive(), 1u);
  EXPECT_EQ(registry.Resolve(0.1)->CountActive(), 8u);

  // Query tighter than anything registered: nothing qualifies.
  EXPECT_EQ(registry.Resolve(0.05), nullptr);

  // Very loose query: the coarsest snapshot.
  EXPECT_EQ(registry.Resolve(100.0)->CountActive(), 1u);
}

TEST(MultiResolutionTest, TightestIsSmallestThreshold) {
  MultiResolutionRegistry registry;
  registry.Register(2.0, ViewWithActives(6, 2));
  registry.Register(0.5, ViewWithActives(6, 5));
  ASSERT_NE(registry.Tightest(), nullptr);
  EXPECT_EQ(registry.Tightest()->CountActive(), 5u);
}

TEST(MultiResolutionTest, ReRegisterReplaces) {
  MultiResolutionRegistry registry;
  registry.Register(1.0, ViewWithActives(4, 4));
  registry.Register(1.0, ViewWithActives(4, 2));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Resolve(1.0)->CountActive(), 2u);
}

TEST(MultiResolutionTest, ThresholdsSortedAscending) {
  MultiResolutionRegistry registry;
  registry.Register(3.0, ViewWithActives(2, 1));
  registry.Register(0.5, ViewWithActives(2, 2));
  registry.Register(1.0, ViewWithActives(2, 1));
  EXPECT_EQ(registry.Thresholds(), (std::vector<double>{0.5, 1.0, 3.0}));
}

TEST(MultiResolutionDeathTest, NonPositiveThresholdAborts) {
  MultiResolutionRegistry registry;
  EXPECT_DEATH(registry.Register(0.0, ViewWithActives(1, 1)),
               "SNAPQ_CHECK");
}

TEST(MultiResolutionTest, CoarserSnapshotsAreSmallerInvariant) {
  // The §3.1 rationale: larger T -> fewer representatives. Verify the
  // registry preserves whatever monotone family it is given.
  MultiResolutionRegistry registry;
  registry.Register(0.1, ViewWithActives(100, 30));
  registry.Register(1.0, ViewWithActives(100, 12));
  registry.Register(10.0, ViewWithActives(100, 2));
  size_t prev = 1000;
  for (double t : registry.Thresholds()) {
    const size_t n = registry.Resolve(t)->CountActive();
    EXPECT_LE(n, prev);
    prev = n;
  }
}

}  // namespace
}  // namespace snapq
