#include "query/multipath.h"

#include <algorithm>

#include "common/check.h"

namespace snapq {

MultipathSketchAggregator::MultipathSketchAggregator(
    Simulator* sim, std::vector<std::unique_ptr<SnapshotAgent>>* agents,
    const MultipathConfig& config)
    : sim_(sim), agents_(agents), config_(config) {
  SNAPQ_CHECK(sim != nullptr && agents != nullptr);
  SNAPQ_CHECK_GT(config_.max_depth, 0);
  for (auto& agent : *agents_) {
    const NodeId self = agent->id();
    agent->SetQueryHandler(
        [this, self](const Message& msg) { OnQueryMessage(self, msg); });
  }
}

MultipathSketchAggregator::~MultipathSketchAggregator() {
  for (auto& agent : *agents_) {
    agent->SetQueryHandler({});
  }
}

MultipathResult MultipathSketchAggregator::Execute(const Rect& region,
                                                   NodeId sink) {
  SNAPQ_CHECK_LT(sink, agents_->size());
  SNAPQ_CHECK(!active_);
  ++query_id_;
  region_ = region;
  sink_ = sink;
  start_ = sim_->now();
  states_.clear();
  states_.resize(agents_->size());
  active_ = true;

  const uint64_t requests_before =
      sim_->metrics().sent(MessageType::kQueryRequest);
  const uint64_t replies_before =
      sim_->metrics().sent(MessageType::kQueryReply);

  MultipathResult result;
  if (sim_->alive(sink)) {
    NodeState& root = states_[sink];
    root.saw_request = true;
    root.depth = 0;
    root.sketch = std::make_unique<SumSketch>(config_.num_bitmaps);
    Message request;
    request.type = MessageType::kQueryRequest;
    request.from = sink;
    request.to = kBroadcastId;
    request.epoch = query_id_;
    request.value = 0.0;  // sender depth
    request.values = {region.min_x, region.min_y, region.max_x,
                      region.max_y};
    sim_->Send(request);
    root.transmitted = true;
  }

  const Time deadline = start_ + 2 * config_.max_depth + 1;
  sim_->RunUntil(deadline);

  NodeState& root = states_[sink];
  if (sim_->alive(sink) && root.sketch != nullptr) {
    if (region_.Contains(sim_->links().position(sink))) {
      root.sketch->AddValue(sink, (*agents_)[sink]->measurement());
    }
    result.estimate = root.sketch->EstimateSum();
  }
  for (const NodeState& s : states_) {
    if (s.transmitted) ++result.participants;
  }
  result.request_messages =
      sim_->metrics().sent(MessageType::kQueryRequest) - requests_before;
  result.reply_messages =
      sim_->metrics().sent(MessageType::kQueryReply) - replies_before;
  active_ = false;
  return result;
}

void MultipathSketchAggregator::OnQueryMessage(NodeId self,
                                               const Message& msg) {
  if (!active_ || msg.epoch != query_id_) return;
  NodeState& state = states_[self];
  switch (msg.type) {
    case MessageType::kQueryRequest: {
      if (state.saw_request) return;
      state.saw_request = true;
      state.depth = static_cast<Time>(msg.value) + 1;
      state.sketch = std::make_unique<SumSketch>(config_.num_bitmaps);
      if (state.depth < config_.max_depth) {
        Message forward = msg;
        forward.from = self;
        forward.value = static_cast<double>(state.depth);
        sim_->Send(forward);
        state.transmitted = true;
      }
      // Ring slot: deeper rings report first; every node broadcasts once.
      const Time reply_at =
          start_ + 2 * config_.max_depth -
          std::min(state.depth, config_.max_depth);
      sim_->ScheduleAt(reply_at, [this, self, id = query_id_] {
        if (active_ && query_id_ == id) BroadcastSketch(self);
      });
      return;
    }
    case MessageType::kQueryReply: {
      // OR-merging is idempotent: fold in every sketch heard, whatever
      // ring it came from — duplicates and echoes cannot double count.
      if (state.sketch == nullptr) return;
      state.sketch->Merge(SumSketch::FromWire(msg.ids));
      return;
    }
    default:
      return;
  }
}

void MultipathSketchAggregator::BroadcastSketch(NodeId self) {
  NodeState& state = states_[self];
  if (!state.saw_request || state.sketch == nullptr ||
      !sim_->alive(self) || self == sink_) {
    return;
  }
  if (region_.Contains(sim_->links().position(self))) {
    state.sketch->AddValue(self, (*agents_)[self]->measurement());
  }
  Message reply;
  reply.type = MessageType::kQueryReply;
  reply.from = self;
  reply.to = kBroadcastId;  // multipath: every neighbor may catch it
  reply.epoch = query_id_;
  reply.ids = state.sketch->sketch().bitmaps();
  sim_->Send(reply);
  state.transmitted = true;
}

}  // namespace snapq
