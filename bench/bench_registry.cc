#include "bench_registry.h"

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "exec/parallel_sweep.h"

namespace snapq::bench {

Registry& Registry::Instance() {
  static Registry instance;
  return instance;
}

bool Registry::Add(const char* name, const char* description, BenchFn fn) {
  const auto pos = std::lower_bound(
      benchmarks_.begin(), benchmarks_.end(), name,
      [](const BenchInfo& info, const char* n) {
        return std::strcmp(info.name, n) < 0;
      });
  benchmarks_.insert(pos, BenchInfo{name, description, fn});
  return true;
}

const BenchInfo* Registry::Find(const std::string& name) const {
  for (const BenchInfo& info : benchmarks_) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

int StandaloneMain(int argc, char** argv) {
  bool quick = false;
  int jobs = 0;  // 0 = SNAPQ_JOBS / hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs needs an argument\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
      if (jobs <= 0) {
        std::fprintf(stderr, "--jobs wants a positive integer\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--quick] [--jobs N]\n", argv[0]);
      for (const BenchInfo& info : Registry::Instance().benchmarks()) {
        std::printf("  %s: %s\n", info.name, info.description);
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (Registry::Instance().benchmarks().empty()) {
    std::fprintf(stderr, "no benchmarks registered\n");
    return 1;
  }
  int rc = 0;
  for (const BenchInfo& info : Registry::Instance().benchmarks()) {
    RunContext ctx;
    ctx.name = info.name;
    ctx.argv0 = argv[0] != nullptr ? argv[0] : "";
    ctx.quick = quick;
    ctx.repetitions = quick ? 1 : Repetitions();
    ctx.write_sidecars = true;
    ctx.jobs = exec::ResolveJobs(jobs);
    info.fn(ctx);
    if (ctx.exit_code != 0) {
      std::fprintf(stderr, "%s: driver verdict %d\n", info.name,
                   ctx.exit_code);
      rc = std::max(rc, ctx.exit_code);
    }
  }
  return rc;
}

}  // namespace snapq::bench
