# Empty compiler generated dependencies file for fig15_maintenance_messages.
# This may be replaced when dependencies are built.
