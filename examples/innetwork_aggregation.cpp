// Message-level in-network aggregation (TAG): runs the same aggregate
// query as real radio traffic — flooding tree formation, level-scheduled
// convergecast — under increasing message loss, regular vs snapshot, and
// shows how the snapshot's smaller data-carrier set protects the answer.
//
//   $ ./build/examples/innetwork_aggregation
#include <cmath>
#include <cstdio>

#include "api/experiment.h"
#include "query/innetwork.h"

using namespace snapq;

int main() {
  std::printf("in-network SUM over a multi-hop 100-node network\n\n");
  std::printf("%-8s %-12s %-22s %-22s\n", "P_loss", "truth", "regular (err)",
              "snapshot (err)");
  for (double loss : {0.0, 0.1, 0.2}) {
    SensitivityConfig config;
    config.num_classes = 1;
    config.transmission_range = 0.35;  // several hops across the square
    config.loss_probability = loss;
    config.seed = 5;
    SensitivityOutcome outcome = RunSensitivityTrial(config);
    SensorNetwork& net = *outcome.network;

    double truth = 0.0;
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      truth += net.agent(i).measurement();
    }

    InNetworkAggregator aggregator(&net.sim(), &net.agents());
    const InNetworkResult regular = aggregator.Execute(
        Rect::UnitSquare(), AggregateFunction::kSum, 0, false);
    const InNetworkResult snap = aggregator.Execute(
        Rect::UnitSquare(), AggregateFunction::kSum, 0, true);

    auto err = [truth](const InNetworkResult& r) {
      return 100.0 * std::abs(r.aggregate.value_or(0.0) - truth) /
             std::abs(truth);
    };
    std::printf("%-8.2f %-12.1f %-10.1f (%4.1f%%)    %-10.1f (%4.1f%%)\n",
                loss, truth, regular.aggregate.value_or(0.0), err(regular),
                snap.aggregate.value_or(0.0), err(snap));
    std::printf("         messages: regular %llu req + %llu replies, "
                "snapshot %llu req + %llu replies\n",
                static_cast<unsigned long long>(regular.request_messages),
                static_cast<unsigned long long>(regular.reply_messages),
                static_cast<unsigned long long>(snap.request_messages),
                static_cast<unsigned long long>(snap.reply_messages));
  }
  std::printf("\nsnapshot replies come from far fewer data carriers, so "
              "fewer readings are exposed to loss.\n");
  return 0;
}
