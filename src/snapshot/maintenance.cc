#include "snapshot/maintenance.h"

#include <algorithm>

#include "common/check.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "snapshot/election.h"

namespace snapq {

MaintenanceDriver::MaintenanceDriver(
    Simulator* sim, std::vector<std::unique_ptr<SnapshotAgent>>* agents,
    Time interval)
    : sim_(sim), agents_(agents), interval_(interval) {
  SNAPQ_CHECK(sim != nullptr && agents != nullptr);
  SNAPQ_CHECK_GT(interval, 0);
}

void MaintenanceDriver::ScheduleRounds(Time first_round, Time horizon,
                                       RoundCallback callback) {
  for (Time t = first_round; t < horizon; t += interval_) {
    sim_->ScheduleAt(t, [this, t, horizon, callback] {
      RunRound(t, horizon, callback);
    });
  }
}

namespace {

/// Total protocol (maintenance + election) messages sent so far; excludes
/// application/data traffic so Fig-15-style accounting is not polluted by
/// query responses flowing between rounds.
uint64_t ProtocolSends(const Metrics& m) {
  uint64_t total = 0;
  for (MessageType t :
       {MessageType::kInvitation, MessageType::kCandList,
        MessageType::kAccept, MessageType::kRecall, MessageType::kStayActive,
        MessageType::kRepAck, MessageType::kHeartbeat,
        MessageType::kHeartbeatReply, MessageType::kResign}) {
    total += m.sent(t);
  }
  return total;
}

}  // namespace

void MaintenanceDriver::RunRound(Time round_start, Time /*horizon*/,
                                 RoundCallback callback) {
  sim_->ResetPerNodeCounters();
  obs::ProfCount(obs::HotOp::kMaintenanceRounds);
  obs::ScopedPhaseTimer phase_timer(obs::ProfPhase::kMaintenanceRound);
  const uint64_t sends_before = ProtocolSends(sim_->metrics());
  // Root cause: this round's heartbeats, replies, timeout re-elections and
  // resignations all trace back here.
  const TraceContext round_ctx =
      sim_->MintTraceRoot(obs::TraceRootKind::kHeartbeatRound, kInvalidNode);
  {
    obs::Span tick_span(&sim_->registry(), "maintenance.tick");
    tick_span.AttachTrace(sim_->tracer(), round_ctx);
    tick_span.BeginSim(round_start);
    Simulator::TraceScope scope(*sim_, round_ctx);
    for (auto& agent : *agents_) {
      agent->MaintenanceTick();
    }
    tick_span.EndSim(sim_->now());
  }
  sim_->registry().GetCounter("maintenance.rounds")->Inc();
  if (!callback) return;
  // Measure after the round's re-elections quiesce but before the next
  // round begins.
  const Time settle = std::min<Time>(interval_ - 1, 60);
  sim_->ScheduleAt(round_start + settle,
                   [this, round_start, sends_before, callback] {
    MaintenanceRoundStats stats;
    stats.round_start = round_start;
    const ElectionStats s = SummarizeSnapshot(*sim_, *agents_);
    stats.snapshot_size = s.num_active;
    stats.num_spurious = s.num_spurious;
    size_t live = 0;
    for (const auto& agent : *agents_) {
      if (sim_->alive(agent->id())) ++live;
    }
    const uint64_t delta = ProtocolSends(sim_->metrics()) - sends_before;
    stats.avg_messages_per_node =
        live == 0 ? 0.0
                  : static_cast<double>(delta) / static_cast<double>(live);

    obs::MetricRegistry& reg = sim_->registry();
    reg.GetGauge("maintenance.snapshot_size")
        ->Set(static_cast<double>(stats.snapshot_size));
    reg.GetHistogram("maintenance.messages_per_node",
                     {0, 0.5, 1, 2, 4, 8, 16, 32})
        ->Observe(stats.avg_messages_per_node);
    sim_->journal().Emit(
        "maintenance.round", sim_->now(), [&](obs::JournalEvent& e) {
          e.Int("round_start", stats.round_start)
              .Int("snapshot_size", static_cast<int64_t>(stats.snapshot_size))
              .Int("spurious", static_cast<int64_t>(stats.num_spurious))
              .Num("avg_messages_per_node", stats.avg_messages_per_node);
        });
    callback(stats);
  });
}

}  // namespace snapq
