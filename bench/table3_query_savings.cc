// Table 3: reduction in the number of nodes participating in a spatial
// snapshot query, versus regular execution. Setup (§6.2): for each query a
// random sink, a TAG-style aggregation tree, and the spatial predicate
// "loc in [x-W/2, x+W/2] x [y-W/2, y+W/2]" around a random point; 200
// random queries, T = 1; routing nodes count as participants.
//
// Paper values for reference:
//                 K=1            K=100
//   range:     0.2   0.7       0.2   0.7
//   W^2=0.01   11%   29%        3%    7%
//   W^2=0.1    38%   77%       16%   24%
//   W^2=0.5    52%   91%       23%   49%
#include <cmath>
#include <iostream>
#include <limits>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

/// Average savings of snapshot over regular execution, for one Table-3
/// cell, over `repetitions` independently elected networks. Repetitions
/// run in parallel; a rep with no regular participants (possible only in
/// degenerate quick runs) yields NaN and is skipped in the seed-order fold.
double SavingsFor(size_t num_classes, double range, double w_squared,
                  int repetitions, uint64_t base_seed, int queries,
                  int jobs) {
  const auto samples = exec::ParallelMap<double>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        SensitivityConfig config;
        config.num_classes = num_classes;
        config.transmission_range = range;
        config.seed = base_seed + r;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;

        Rng rng(config.seed ^ 0x51AB5EEDULL);
        const double w = std::sqrt(w_squared);
        uint64_t regular_total = 0;
        uint64_t snapshot_total = 0;
        for (int q = 0; q < queries; ++q) {
          ExecutionOptions options;
          options.sink = static_cast<NodeId>(
              rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
          const Point center{rng.NextDouble(), rng.NextDouble()};
          const Rect region = Rect::CenteredSquare(center, w);
          const QueryResult regular = net.executor().ExecuteRegion(
              region, /*use_snapshot=*/false, AggregateFunction::kSum,
              options);
          const QueryResult snap = net.executor().ExecuteRegion(
              region, /*use_snapshot=*/true, AggregateFunction::kSum,
              options);
          regular_total += regular.participants;
          snapshot_total += snap.participants;
        }
        if (regular_total == 0) {
          return std::numeric_limits<double>::quiet_NaN();
        }
        return 1.0 - static_cast<double>(snapshot_total) /
                         static_cast<double>(regular_total);
      });
  RunningStats savings;
  for (double sample : samples) {
    if (!std::isnan(sample)) savings.Add(sample);
  }
  return savings.mean();
}

}  // namespace

SNAPQ_BENCHMARK(table3_query_savings,
                "Table 3: participation savings of snapshot queries") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Table 3: participation savings of snapshot queries",
      "N=100, T=1, sse; 200 random aggregate queries per cell, random "
      "sinks, TAG aggregation trees; savings = 1 - N_snapshot/N_regular");

  const int queries = static_cast<int>(ctx.Scaled(200));
  TablePrinter table({"query range", "K=1 r=0.2", "K=1 r=0.7", "K=100 r=0.2",
                      "K=100 r=0.7"});
  for (double w2 : {0.01, 0.1, 0.5}) {
    std::vector<std::string> row = {"W^2 = " + TablePrinter::Num(w2, 2)};
    for (size_t k : {1u, 100u}) {
      for (double range : {0.2, 0.7}) {
        const double s = SavingsFor(k, range, w2, ctx.repetitions,
                                    bench::kBaseSeed, queries, ctx.jobs);
        row.push_back(TablePrinter::Num(100.0 * s, 0) + "%");
      }
    }
    // Reorder: the loop above produced K1r02, K1r07, K100r02, K100r07 --
    // already the header order.
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}
